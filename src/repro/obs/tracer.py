"""Harness span tracing with Chrome trace-event export.

Spans record *real* wall time around harness phases — one experiment
cell, one engine run, one replication — and export to the Chrome
trace-event JSON format, so a sweep can be opened in ``chrome://tracing``
or `Perfetto <https://ui.perfetto.dev>`_ exactly like the simulation's
own merged user/kernel timelines (:mod:`repro.analysis.export`).  The
real KTAU leans on TAU's converters for Vampir/Jumpshot; LTTng-style
viewers are the modern equivalent, and the trace-event format is their
lingua franca.

Records are appended as ``B``/``E`` (duration begin/end) events at the
moment the span opens/closes, so the event list is naturally
timestamp-ordered and balanced — the same property the exporter for
simulated traces validates.  ``instant`` adds ``i`` records for
point-in-time marks (e.g. a replication completing in a worker).

Everything here is wall-clock observation of the *harness*; nothing
feeds back into simulated time (see :mod:`repro.obs.runtime`).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterator

from repro.obs.runtime import wall_clock


class Tracer:
    """An in-memory trace-event recorder (one per process).

    The caller is responsible for nesting spans LIFO per process — the
    context-manager API makes that automatic.  ``pid``/``tid`` are fixed
    (the harness is single-threaded per process); worker processes each
    get their own tracer whose records stay worker-local.
    """

    def __init__(self) -> None:
        self._t0 = wall_clock()
        self._events: list[dict] = []
        self._depth = 0

    # -- recording -------------------------------------------------------
    def _ts_us(self) -> float:
        return (wall_clock() - self._t0) * 1e6

    def begin(self, name: str, category: str = "harness", **args) -> None:
        """Open a span (pair with :meth:`end`; prefer :meth:`span`)."""
        record = {"name": name, "ph": "B", "pid": 1, "tid": 0,
                  "ts": self._ts_us(), "cat": category}
        if args:
            record["args"] = args
        self._events.append(record)
        self._depth += 1

    def end(self, name: str, category: str = "harness", **args) -> None:
        """Close the innermost open span."""
        record = {"name": name, "ph": "E", "pid": 1, "tid": 0,
                  "ts": self._ts_us(), "cat": category}
        if args:
            record["args"] = args
        self._events.append(record)
        self._depth -= 1

    @contextmanager
    def span(self, name: str, category: str = "harness",
             **args) -> Iterator[None]:
        """A duration span as a context manager."""
        self.begin(name, category, **args)
        try:
            yield
        finally:
            self.end(name, category)

    def instant(self, name: str, category: str = "harness", **args) -> None:
        """A point-in-time mark."""
        record = {"name": name, "ph": "i", "s": "t", "pid": 1, "tid": 0,
                  "ts": self._ts_us(), "cat": category}
        if args:
            record["args"] = args
        self._events.append(record)

    # -- export ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def to_chrome_json(self, process_name: str = "repro") -> str:
        """Serialise to a Chrome trace-event JSON string.

        Spans still open at export time (an exception unwound past them,
        or export happened mid-phase) are closed at the last timestamp
        under the ``truncated`` category, so viewers never mis-nest.
        """
        records = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                    "args": {"name": process_name}}]
        records.extend(self._events)
        stack: list[str] = []
        last_ts = 0.0
        for record in self._events:
            last_ts = record["ts"]
            if record["ph"] == "B":
                stack.append(record["name"])
            elif record["ph"] == "E" and stack:
                stack.pop()
        while stack:
            records.append({"name": stack.pop(), "ph": "E", "pid": 1,
                            "tid": 0, "ts": last_ts, "cat": "truncated"})
        return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"})

    def save(self, path: str, process_name: str = "repro") -> None:
        """Write the Chrome trace-event file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_chrome_json(process_name))


def validate_trace_events(payload: str) -> tuple[int, int]:
    """Validate an exported harness trace; returns (#spans, #instants).

    Checks the invariants viewers rely on: every record carries
    name/ph/pid/tid, timestamps are monotonically non-decreasing in file
    order, and ``B``/``E`` records balance per (pid, tid).
    """
    doc = json.loads(payload)
    if "traceEvents" not in doc:
        raise ValueError("missing traceEvents")
    stacks: dict[tuple[int, int], list[str]] = {}
    last_ts: dict[tuple[int, int], float] = {}
    spans = 0
    instants = 0
    for record in doc["traceEvents"]:
        for key in ("name", "ph", "pid", "tid"):
            if key not in record:
                raise ValueError(f"record missing {key!r}: {record}")
        if record["ph"] == "M":
            continue
        thread = (record["pid"], record["tid"])
        ts = record["ts"]
        if ts < last_ts.get(thread, 0.0) - 1e-9:
            raise ValueError(f"timestamps not monotonic on {thread}")
        last_ts[thread] = ts
        if record["ph"] == "B":
            stacks.setdefault(thread, []).append(record["name"])
        elif record["ph"] == "E":
            stack = stacks.get(thread, [])
            if not stack or stack[-1] != record["name"]:
                raise ValueError(
                    f"unbalanced E for {record['name']!r} on {thread}")
            stack.pop()
            spans += 1
        elif record["ph"] == "i":
            instants += 1
        else:
            raise ValueError(f"unknown phase {record['ph']!r}")
    for thread, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed spans on {thread}: {stack}")
    return spans, instants


#: The process-global tracer (fresh per :func:`repro.obs.runtime.enable`).
TRACER = Tracer()


def reset() -> None:
    """Replace the global tracer with a fresh one (new time epoch)."""
    global TRACER
    TRACER = Tracer()
