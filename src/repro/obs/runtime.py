"""Global observability state and the sanctioned wall-clock.

The harness-level observability subsystem (:mod:`repro.obs`) watches the
*host* side of the reproduction — the discrete-event engine, the KTAU
measurement layer, the replication runner — with the same philosophy the
paper applies to the kernel: cheap always-on counters, opt-in tracing,
and dynamic enable/disable with near-zero cost when off.

Two invariants make it safe to wire into the measured substrate:

1. **Zero feedback.** Nothing here ever touches simulated state.  Wall
   time is observed, never charged back; metric and trace content cannot
   alter event order, RNG draws, or profile counters, so every
   determinism guarantee (serial/parallel bit-identity included) holds
   with observability on or off.
2. **Zero-overhead-off fast path.** Hot modules gate on the module-level
   booleans below (one attribute read + branch, checked per *run* or per
   *flush point*, never per event), mirroring the
   :class:`~repro.core.overhead.ZeroOverheadModel` short-circuit inside
   the simulation.

This module also owns the repository's **only** sanctioned wall-clock
reads.  The ktaulint determinism rules (KTAU201) ban wall time across
the deterministic layers — including this package — precisely so that
every real-time observation is funnelled through the two suppressed
lines below, where a reviewer can see it cannot leak into simulation.
"""

from __future__ import annotations

import sys
import time
from datetime import datetime, timezone

#: Metrics collection on/off.  Hot layers read this module attribute
#: directly; keep it a plain bool.
metrics_on: bool = False

#: Span tracing on/off (separate switch: tracing records one entry per
#: span, metrics only bump counters).
tracing_on: bool = False

#: Live progress reporting for sweeps (resolved at enable time).
progress_on: bool = False


def wall_clock() -> float:
    """Monotonic wall-clock seconds — the sanctioned real-time read."""
    return time.perf_counter()  # ktaulint: disable=KTAU201


def wall_time_iso() -> str:
    """Current UTC time as ISO-8601 (manifest stamps only)."""
    return datetime.now(timezone.utc).isoformat()  # ktaulint: disable=KTAU201


def enabled() -> bool:
    """True when any observability facility is on."""
    return metrics_on or tracing_on


def enable(metrics: bool = True, tracing: bool = False,
           progress: bool | None = None) -> None:
    """Switch observability on.

    ``progress=None`` resolves to "stderr is a terminal": interactive
    runs get a live sweep progress line, CI logs do not.  Tracing starts
    from a fresh tracer so span timestamps share one epoch per run.
    """
    global metrics_on, tracing_on, progress_on
    metrics_on = bool(metrics)
    tracing_on = bool(tracing)
    if progress is None:
        progress = metrics_on and sys.stderr.isatty()
    progress_on = bool(progress)
    if tracing_on:
        from repro.obs import tracer
        tracer.reset()


def disable(reset: bool = True) -> None:
    """Switch everything off; ``reset`` also clears collected data."""
    global metrics_on, tracing_on, progress_on
    metrics_on = False
    tracing_on = False
    progress_on = False
    if reset:
        from repro.obs import metrics, tracer
        metrics.REGISTRY.reset()
        tracer.reset()


def progress(label: str, done: int, total: int) -> None:
    """One line of live sweep progress (no-op unless enabled)."""
    if not progress_on:
        return
    stream = sys.stderr
    stream.write(f"\r[repro] {label}: {done}/{total}")
    if done >= total:
        stream.write("\n")
    stream.flush()
