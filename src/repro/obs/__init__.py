"""repro.obs — harness-level observability (metrics, spans, manifests).

KTAU's thesis applied to the reproduction itself: the layer that *runs*
the experiments (discrete-event engine, measurement system, replication
fan-out) carries low-overhead always-on counters plus opt-in span
tracing, with dynamic enable/disable and a documented zero-overhead-off
fast path — the same design KTAU uses inside the kernel and GAPP uses
for its fast profiler.

Three facilities:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms; instrumented modules publish plain-integer
  deltas at flush points (end of an engine run, a task exit, a
  replication completion), never per event.
* :mod:`repro.obs.tracer` — wall-clock spans exported as Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.manifest` — per-run :class:`RunManifest` documents
  (command, config, seeds, wall time, metric snapshot) written next to
  experiment output.

This package sits at the *bottom* of the architecture (it imports
nothing from ``repro``), so every layer may publish into it; it never
touches simulated state, so enabling it cannot perturb results — the
determinism tests assert byte-identical profiles with observability on
and off, serial and parallel.

Typical use::

    from repro import obs
    obs.enable(metrics=True, tracing=True)
    ... run experiments ...
    print(json.dumps(obs.snapshot(), indent=2, sort_keys=True))
    obs.save_trace("run.trace.json")
    obs.disable()

or from the shell: ``repro table 3 --metrics --trace-out t.json``.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager

from repro.obs import runtime
from repro.obs.manifest import (RunManifest, build_manifest,
                                manifest_path_for)
from repro.obs.metrics import (REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, snapshot)
from repro.obs.runtime import (disable, enable, enabled, progress,
                               wall_clock, wall_time_iso)
from repro.obs.tracer import Tracer, validate_trace_events

#: Reusable do-nothing context manager for the tracing-off fast path.
_NULL_SPAN: ContextManager[None] = nullcontext()


def span(name: str, category: str = "harness", **args) -> ContextManager[None]:
    """A span on the global tracer, or a no-op when tracing is off."""
    if not runtime.tracing_on:
        return _NULL_SPAN
    from repro.obs import tracer
    return tracer.TRACER.span(name, category, **args)


def instant(name: str, category: str = "harness", **args) -> None:
    """An instant mark on the global tracer (no-op when tracing is off)."""
    if not runtime.tracing_on:
        return
    from repro.obs import tracer
    tracer.TRACER.instant(name, category, **args)


def save_trace(path: str, process_name: str = "repro") -> None:
    """Write the global tracer's Chrome trace-event file."""
    from repro.obs import tracer
    tracer.TRACER.save(path, process_name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RunManifest",
    "Tracer",
    "build_manifest",
    "disable",
    "enable",
    "enabled",
    "instant",
    "manifest_path_for",
    "progress",
    "runtime",
    "save_trace",
    "snapshot",
    "span",
    "validate_trace_events",
    "wall_clock",
    "wall_time_iso",
]
