"""Per-run manifests: what ran, with what, and what it cost.

A :class:`RunManifest` is the harness-level analogue of the profile
dumps the simulation produces: a small JSON document written next to
experiment output recording the command, its configuration, the seeds
involved, wall time, and the metric snapshot (engine event counts,
measurement-layer cache behaviour, fan-out timings).  Every bench
trajectory entry and every future perf PR can cite these numbers
instead of re-deriving them.

The document separates reproducible content from ambient stamps: the
``run`` block (command, config, seeds, versions) describes what to rerun,
while ``wall`` (timings, host stamps) is explicitly non-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: Manifest schema version (bump on breaking layout changes).
MANIFEST_VERSION = 1


def manifest_path_for(trace_path: str) -> str:
    """Conventional manifest path next to a trace file.

    ``t.json`` maps to ``t.manifest.json``; non-``.json`` paths get the
    suffix appended.
    """
    if trace_path.endswith(".json"):
        return trace_path[:-len(".json")] + ".manifest.json"
    return trace_path + ".manifest.json"


@dataclass
class RunManifest:
    """One run's provenance + cost record."""

    command: str
    argv: list[str]
    config: dict[str, Any]
    seeds: list[int]
    wall_s: float
    started_utc: str
    metrics: dict[str, Any]
    trace_file: Optional[str] = None
    version: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def to_doc(self) -> dict:
        return {
            "manifest_version": MANIFEST_VERSION,
            "run": {
                "command": self.command,
                "argv": list(self.argv),
                "config": self.config,
                "seeds": list(self.seeds),
                "repro_version": self.version,
            },
            "wall": {
                "started_utc": self.started_utc,
                "wall_s": self.wall_s,
            },
            "metrics": self.metrics,
            "trace_file": self.trace_file,
            "extra": self.extra,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for argparse config values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def build_manifest(command: str, argv: list[str], config: dict[str, Any],
                   wall_s: float, started_utc: str, metrics: dict[str, Any],
                   trace_file: Optional[str] = None,
                   version: str = "") -> RunManifest:
    """Assemble a manifest from a finished run.

    ``config`` is typically ``vars(args)`` from argparse; callables and
    other non-JSON values are coerced to ``repr`` strings, and seeds are
    pulled from the conventional ``seed``/``seeds`` keys.
    """
    clean = {k: _jsonable(v) for k, v in config.items()
             if not callable(v) and k != "func"}
    seeds: list[int] = []
    if isinstance(clean.get("seed"), int):
        seeds = [clean["seed"]]
    elif isinstance(clean.get("seeds"), int):
        seeds = list(range(1, clean["seeds"] + 1))
    elif isinstance(clean.get("seeds"), list):
        seeds = [s for s in clean["seeds"] if isinstance(s, int)]
    return RunManifest(command=command, argv=list(argv), config=clean,
                       seeds=seeds, wall_s=wall_s, started_utc=started_utc,
                       metrics=metrics, trace_file=trace_file,
                       version=version)
