"""Sampling vs direct measurement: the quantitative comparison.

Reconstructs a flat profile from samples (``estimated seconds = samples
x period``) and compares it against KTAU's exact per-event exclusive
times, exposing the three structural limits §2 attributes to sampling:

1. **on-CPU accuracy is statistical** — abundant events converge, rare
   or short events carry large relative error;
2. **blocked time is invisible** — a sleeping task receives no samples,
   so voluntary scheduling (most of MPI_Recv!) simply does not exist in
   a sampled profile;
3. **no online counts** — samples estimate time shares, never call
   counts or per-call costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.wire import TaskProfileDump
from repro.oprofile.sampler import Sample


def estimated_flat_profile(samples: list[Sample], period_ns: int,
                           pid: int | None = None) -> dict[str, float]:
    """``symbol -> estimated seconds`` from a sample set.

    ``pid`` restricts to one process (OProfile's per-image separation).
    """
    out: dict[str, float] = {}
    for sample in samples:
        if pid is not None and sample.pid != pid:
            continue
        out[sample.symbol] = out.get(sample.symbol, 0.0) + period_ns / 1e9
    return out


@dataclass(frozen=True)
class ComparisonRow:
    """One event's sampled-vs-measured comparison."""

    symbol: str
    measured_s: float  # KTAU exclusive time
    sampled_s: float  # samples x period
    #: relative error; NaN when the event was never sampled
    relative_error: float


def compare_with_ktau(samples: list[Sample], period_ns: int,
                      kdump: TaskProfileDump, hz: float,
                      pid: int | None = None,
                      udump=None) -> list[ComparisonRow]:
    """Per-event comparison rows, sorted by measured time descending.

    On-CPU kernel events are comparable; ``schedule``/``schedule_vol``
    rows show sampling's structural blindness (their sampled time is
    ~zero however large the measured wait is).  When a TAU profile
    (``udump``) is supplied, user routines are compared too — long
    compute routines are where sampling converges.
    """
    flat = estimated_flat_profile(samples, period_ns, pid=pid)

    def row(name: str, measured: float) -> ComparisonRow:
        sampled = flat.get(name, 0.0)
        error = (sampled - measured) / measured if measured > 0 else float("nan")
        return ComparisonRow(name, measured, sampled, error)

    rows = [row(name, excl / hz)
            for name, (_c, _i, excl) in kdump.perf.items()]
    if udump is not None:
        for name, (_count, _incl, excl) in udump.perf.items():
            rows.append(row(name, excl / hz))
    rows.sort(key=lambda r: -r.measured_s)
    return rows


def sampling_blindness_s(rows: list[ComparisonRow]) -> float:
    """Measured seconds of scheduling wait invisible to the sampler."""
    return sum(r.measured_s - r.sampled_s for r in rows
               if r.symbol in ("schedule", "schedule_vol"))


def render_comparison(rows: list[ComparisonRow], top: int = 12) -> str:
    """Render the sampled-vs-measured table."""
    from repro.analysis.render import ascii_table

    def fmt_err(row: ComparisonRow) -> str:
        if row.measured_s == 0:
            return "-"
        return f"{100 * row.relative_error:+.0f}%"

    table_rows = [(r.symbol, r.measured_s, r.sampled_s, fmt_err(r))
                  for r in rows[:top]]
    return ascii_table(
        ("event", "KTAU measured (s)", "OProfile estimate (s)", "error"),
        table_rows, floatfmt=".4f",
        title="direct measurement vs statistical sampling")
