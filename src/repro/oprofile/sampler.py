"""The sampling engine and its daemon.

A profiling interrupt fires on every CPU each ``period_ns`` (OProfile
uses NMI-driven performance-counter overflow; the simulated equivalent
is a dedicated periodic interrupt).  Each firing attributes one sample
to whatever the CPU was doing:

* an idle CPU samples as ``("idle", "poll_idle")``;
* a running task samples its innermost *kernel* event if its KTAU
  activation stack is non-empty (we are in the kernel), otherwise its
  innermost user routine (TAU context) or plain ``"user"``.

Samples accumulate in fixed-size per-CPU buffers; like the real tool, a
full buffer **drops** samples until the daemon drains it — one concrete
mechanism behind sampling's accuracy problems.  The sampling interrupt
itself costs CPU and is visible to KTAU (it is, after all, interrupt
work in somebody's context).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.kernel.irq import KSpan
from repro.sim.units import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass(frozen=True)
class Sample:
    """One statistical sample."""

    time_ns: int
    cpu: int
    pid: int
    comm: str
    symbol: str  # kernel event, user routine, or "user"/"poll_idle"


class OProfileSampler:
    """Per-node sampling engine."""

    def __init__(self, kernel: "Kernel", period_ns: int = 1 * MSEC,
                 buffer_capacity: int = 4096,
                 sample_cost_ns: int = 2 * USEC):
        self.kernel = kernel
        self.period_ns = period_ns
        self.buffer_capacity = buffer_capacity
        self.sample_cost_ns = sample_cost_ns
        self.buffers: list[list[Sample]] = [
            [] for _ in range(kernel.params.online_cpus)]
        self.dropped = 0
        self.total_samples = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the profiling interrupt on every CPU (staggered)."""
        if self._running:
            return
        self._running = True
        for cpu_idx in range(self.kernel.params.online_cpus):
            stagger = (cpu_idx + 1) * self.period_ns // (
                self.kernel.params.online_cpus + 1)
            self.kernel.engine.schedule(stagger, self._tick_cb(cpu_idx),
                                        "oprofile-sample")

    def stop(self) -> None:
        self._running = False

    def _tick_cb(self, cpu_idx: int):
        def fire() -> None:
            if not self._running:
                return
            self._take_sample(cpu_idx)
            self.kernel.engine.schedule(self.period_ns, self._tick_cb(cpu_idx),
                                        "oprofile-sample")
        return fire

    # ------------------------------------------------------------------
    def _resolve_symbol(self, task: Optional["Task"]) -> tuple[int, str, str]:
        if task is None:
            return (0, "idle", "poll_idle")
        data = task.ktau
        if data is not None and data.stack:
            name = self.kernel.ktau.registry.name_of(data.stack[-1].event_id)
            return (task.pid, task.comm, name)
        if data is not None and data.user_context:
            return (task.pid, task.comm, data.user_context)
        tau = task.tau
        if tau is not None and tau.stack:
            return (task.pid, task.comm, tau.stack[-1].name)
        return (task.pid, task.comm, "user")

    def _take_sample(self, cpu_idx: int) -> None:
        kernel = self.kernel
        cpu = kernel.sched.cpus[cpu_idx]
        pid, comm, symbol = self._resolve_symbol(cpu.current)
        self.total_samples += 1
        buffer = self.buffers[cpu_idx]
        if len(buffer) >= self.buffer_capacity:
            self.dropped += 1
        else:
            buffer.append(Sample(kernel.engine.now, cpu_idx, pid, comm, symbol))
        # the profiling interrupt itself costs CPU in the current context
        kernel.irq.deliver(cpu_idx,
                           KSpan("do_IRQ", self.sample_cost_ns),
                           count_irq=False)

    # ------------------------------------------------------------------
    def drain(self) -> list[Sample]:
        """Remove and return all buffered samples (the daemon's read)."""
        out: list[Sample] = []
        for buffer in self.buffers:
            out.extend(buffer)
            buffer.clear()
        out.sort(key=lambda s: s.time_ns)
        return out


class OProfileDaemon:
    """``oprofiled``: periodically drains the sample buffers.

    The daemon is a real process on the node — the "requirement of a
    daemon" the paper counts against this model — and its drain work
    costs CPU proportional to the volume moved.
    """

    DRAIN_COST_PER_SAMPLE_NS = 300

    def __init__(self, sampler: OProfileSampler, period_ns: int = 200 * MSEC):
        self.sampler = sampler
        self.period_ns = period_ns
        self.samples: list[Sample] = []
        self.task = None

    def start(self):
        def behavior(ctx):
            while True:
                yield from ctx.sleep(self.period_ns)
                drained = self.sampler.drain()
                self.samples.extend(drained)
                cost = max(10 * USEC,
                           len(drained) * self.DRAIN_COST_PER_SAMPLE_NS)
                yield from ctx.compute(cost)

        self.task = self.sampler.kernel.spawn(behavior, "oprofiled")
        return self.task

    def stop(self) -> None:
        self.samples.extend(self.sampler.drain())
        if self.task is not None and self.task.alive:
            self.sampler.kernel.sched.kill_blocked(self.task)
