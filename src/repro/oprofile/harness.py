"""A canned sampling-vs-KTAU comparison run (used by the CLI and bench)."""

from __future__ import annotations

from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.core.libktau import LibKtau
from repro.oprofile.compare import ComparisonRow, compare_with_ktau
from repro.oprofile.sampler import OProfileDaemon, OProfileSampler
from repro.sim.units import MSEC
from repro.workloads.lu import LuParams, lu_app


def run_comparison(seed: int = 17, watched_rank: int = 3
                   ) -> tuple[list[ComparisonRow], OProfileDaemon]:
    """Observe one LU rank with both KTAU and a 1 kHz sampler."""
    params = LuParams(niters=6, iter_compute_ns=60 * MSEC, halo_bytes=32_768,
                      sweep_msg_bytes=4_096, inorm=3)
    cluster = make_chiba(nnodes=4, seed=seed)
    node = cluster.nodes[watched_rank]
    sampler = OProfileSampler(node.kernel, period_ns=1 * MSEC)
    daemon = OProfileDaemon(sampler, period_ns=100 * MSEC)
    job = launch_mpi_job(cluster, 4, lu_app(params),
                         placement=block_placement(1, 4))
    sampler.start()
    daemon.start()
    job.run()
    sampler.stop()
    daemon.stop()
    task = job.world.rank_tasks[watched_rank]
    lib = LibKtau(node.kernel.ktau_proc)
    kdump = lib.read_profiles(include_zombies=True)[task.pid]
    rows = compare_with_ktau(daemon.samples, sampler.period_ns, kdump,
                             node.kernel.clock.hz, pid=task.pid,
                             udump=job.profilers[watched_rank].dump())
    cluster.teardown()
    return rows, daemon
