"""An OProfile-like statistical sampling profiler (baseline comparator).

Table 1 positions KTAU against sampling tools: OProfile is "meant to be
a continuous profiler for Linux", but has "an inability to provide
online information (as it performs a type of partial tracing) and the
requirement of a daemon", with further "issues stemming from the
inaccuracy of sampling based profiles" (§2).

This package implements that baseline on the simulated kernel so the
claims are measurable rather than rhetorical:

* :class:`~repro.oprofile.sampler.OProfileSampler` — a periodic
  profiling interrupt per CPU that records the interrupted context
  (task + innermost kernel event or user routine) into a per-CPU sample
  buffer;
* :class:`~repro.oprofile.sampler.OProfileDaemon` — the ``oprofiled``
  stand-in that periodically drains the buffers (and perturbs the node
  doing so);
* :mod:`repro.oprofile.compare` — flat-profile reconstruction from
  samples and quantitative comparison against KTAU's direct measurement
  (where sampling is accurate, where it misses short events, and what it
  structurally cannot see: time spent blocked).
"""

from repro.oprofile.sampler import OProfileDaemon, OProfileSampler, Sample
from repro.oprofile.compare import (estimated_flat_profile,
                                    compare_with_ktau, ComparisonRow)

__all__ = ["OProfileSampler", "OProfileDaemon", "Sample",
           "estimated_flat_profile", "compare_with_ktau", "ComparisonRow"]
