"""KTAU reproduction package.

This package reproduces, on a simulated Linux-kernel/cluster substrate, the
system described in "Kernel-Level Measurement for Integrated Parallel
Performance Views: the KTAU Project" (Nataraj, Malony, Shende, Morris;
CLUSTER 2006).

Subpackages
-----------
sim
    Discrete-event simulation engine (virtual clock, event queue,
    deterministic RNG streams).
kernel
    Simulated Linux kernel: tasks, scheduler, interrupts, softirqs,
    system calls, TCP/socket networking, procfs.
core
    KTAU itself: instrumentation primitives, the per-task measurement
    system, trace buffers, the /proc/ktau interface, libKtau, and clients
    (KTAUD, runKtau, self-profiling).
tau
    The user-level TAU-like measurement layer and user/kernel merge logic.
cluster
    Nodes, Ethernet network model, an MPI-like message layer implemented
    over the simulated kernel's sockets, machine factories, daemons.
workloads
    NPB-LU-like SSOR, Sweep3D wavefront, LMBENCH-style micro-benchmarks,
    and the paper's artificial interference process.
analysis
    Profile/trace loading, kernel-wide / process-centric / merged views,
    CDFs, histograms, ASCII rendering.
experiments
    One harness per table/figure of the paper's evaluation section.
"""

__version__ = "1.0.0"

from repro.sim.engine import Engine
from repro.sim.rng import RngHub

__all__ = ["Engine", "RngHub", "__version__"]
