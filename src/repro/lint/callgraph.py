"""A static call graph over the linted tree (shared by KTAU7xx).

The graph is deliberately conservative in the direction lockdep is: it
over-approximates reachability.  Calls are resolved:

* by name within the defining module (``helper()``);
* through run-time imports (``mod.helper()``, ``from m import helper``);
* through ``self.method()`` against the enclosing class and its
  resolvable project bases;
* by attribute name against *every* project class defining a method of
  that name (``obj.method()`` where ``obj``'s type is unknown) — weak
  edges, but exactly the edges that make "IRQ context never sleeps"
  provable without type inference.

Nested functions and lambdas are folded into their enclosing function:
a closure scheduled from interrupt context runs in interrupt context,
so whatever it does, its definer "does" for reachability purposes.
``yield`` statements in the function's *own* scope (not nested scopes)
mark generator functions — the distinction KTAU703 needs.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.lint.engine import SourceFile

#: call-reference kinds (see CallRef.kind)
_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


class CallRef:
    """One unresolved call site inside a function body."""

    __slots__ = ("kind", "name", "module", "line", "is_yield_from")

    def __init__(self, kind: str, name: str, line: int,
                 module: Optional[str] = None,
                 is_yield_from: bool = False):
        self.kind = kind          # "name" | "self" | "module" | "attr"
        self.name = name          # callee (function or attribute) name
        self.module = module      # for kind == "module": target module
        self.line = line
        self.is_yield_from = is_yield_from


class FuncInfo:
    """One function or method: its call sites and blocking primitives."""

    __slots__ = ("key", "module", "qualname", "node", "cls",
                 "is_generator", "blocking", "calls")

    def __init__(self, source: SourceFile, qualname: str,
                 node: ast.AST, cls: Optional[ast.ClassDef]):
        self.key = (source.module, qualname)
        self.module = source.module
        self.qualname = qualname  # "func" or "Class.method"
        self.node = node
        self.cls = cls
        #: yields in the function's own scope (nested scopes excluded)
        self.is_generator = False
        #: (line, reason) for each syntactic blocking primitive
        self.blocking: list[tuple[int, str]] = []
        self.calls: list[CallRef] = []


class CallGraph:
    """Call index over every function in the linted sources."""

    def __init__(self, sources: Sequence[SourceFile]):
        self.sources = {s.module: s for s in sources}
        self.funcs: dict[tuple[str, str], FuncInfo] = {}
        #: qualname -> keys (for resolving "Class.method" root specs)
        self.by_qualname: dict[str, list[tuple[str, str]]] = {}
        #: bare method name -> keys of class methods with that name
        self.by_attr: dict[str, list[tuple[str, str]]] = {}
        #: (module, class) -> base-class name nodes
        self.class_bases: dict[tuple[str, str], list[ast.expr]] = {}
        #: module -> {local name -> (module, symbol|None)}
        self.imports: dict[str, dict[str, tuple[str, Optional[str]]]] = {}
        for src in sources:
            self._index_source(src)

    # -- construction -----------------------------------------------------
    def _index_source(self, src: SourceFile) -> None:
        from repro.lint.sharing import _import_map
        self.imports[src.module] = _import_map(src.tree, src.module)
        for node in src.tree.body:
            if isinstance(node, _FUNC_DEFS):
                self._index_func(src, node, None)
            elif isinstance(node, ast.ClassDef):
                self.class_bases[(src.module, node.name)] = node.bases
                for item in node.body:
                    if isinstance(item, _FUNC_DEFS):
                        self._index_func(src, item, node)

    def _index_func(self, src: SourceFile, node: ast.AST,
                    cls: Optional[ast.ClassDef]) -> None:
        qualname = f"{cls.name}.{node.name}" if cls else node.name
        info = FuncInfo(src, qualname, node, cls)
        self.funcs[info.key] = info
        self.by_qualname.setdefault(qualname, []).append(info.key)
        if cls is not None:
            self.by_attr.setdefault(node.name, []).append(info.key)
        nested_roots = [n for n in ast.walk(node)
                        if isinstance(n, _FUNC_DEFS + (ast.Lambda,))
                        and n is not node]
        all_nested: set[int] = set()
        for inner in nested_roots:
            all_nested.update(id(n) for n in ast.walk(inner))
        # Closure *factories* (functions that return a nested closure,
        # e.g. the scheduler's _expiry_cb/_burst_done_cb) do not execute
        # the closure when called — only build it.  Returned closures
        # stay excluded from folding, so calling a factory from IRQ
        # context is not charged with the callback's later task-context
        # work.  Closures scheduled or invoked inline are folded in.
        returned = {n.value.id for n in ast.walk(node)
                    if isinstance(n, ast.Return)
                    and isinstance(n.value, ast.Name)
                    and id(n) not in all_nested}
        unfolded: set[int] = set()
        for inner in nested_roots:
            if isinstance(inner, _FUNC_DEFS) and inner.name in returned:
                unfolded.update(id(n) for n in ast.walk(inner))
        for sub in ast.walk(node):
            if id(sub) in unfolded:
                continue  # returned closure: runs later, elsewhere
            if isinstance(sub, ast.Yield):
                if id(sub) not in all_nested:
                    info.is_generator = True
                if self._is_block_effect(sub.value):
                    info.blocking.append(
                        (sub.lineno, "yields Block(...) (waitqueue sleep)"))
            elif isinstance(sub, ast.YieldFrom):
                if id(sub) not in all_nested:
                    info.is_generator = True
                ref = self._call_ref(src, sub.value, is_yield_from=True)
                if ref is not None:
                    info.calls.append(ref)
            elif isinstance(sub, ast.Call):
                ref = self._call_ref(src, sub)
                if ref is not None:
                    info.calls.append(ref)

    @staticmethod
    def _is_block_effect(value: Optional[ast.expr]) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        name = (func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else "")
        return name == "Block"

    def _call_ref(self, src: SourceFile, call: ast.expr,
                  is_yield_from: bool = False) -> Optional[CallRef]:
        if not isinstance(call, ast.Call):
            return None
        func = call.func
        if isinstance(func, ast.Name):
            return CallRef("name", func.id, call.lineno,
                           is_yield_from=is_yield_from)
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name):
                if recv.id in ("self", "cls"):
                    return CallRef("self", func.attr, call.lineno,
                                   is_yield_from=is_yield_from)
                target = self.imports[src.module].get(recv.id)
                if target is not None and target[1] is None:
                    if not target[0].startswith("repro"):
                        return None  # stdlib module call: out of scope
                    return CallRef("module", func.attr, call.lineno,
                                   module=target[0],
                                   is_yield_from=is_yield_from)
            return CallRef("attr", func.attr, call.lineno,
                           is_yield_from=is_yield_from)
        return None

    # -- resolution -------------------------------------------------------
    def resolve(self, info: FuncInfo, ref: CallRef
                ) -> list[tuple[str, str]]:
        """Candidate callee keys for one call site (sorted, may be [])."""
        if ref.kind == "name":
            key = (info.module, ref.name)
            if key in self.funcs:
                return [key]
            target = self.imports.get(info.module, {}).get(ref.name)
            if target is not None and target[1] is not None:
                cand = (target[0], target[1])
                if cand in self.funcs:
                    return [cand]
                init = (target[0], f"{target[1]}.__init__")
                if init in self.funcs:
                    return [init]
            init = (info.module, f"{ref.name}.__init__")
            return [init] if init in self.funcs else []
        if ref.kind == "module":
            cand = (ref.module or "", ref.name)
            if cand in self.funcs:
                return [cand]
            init = (ref.module or "", f"{ref.name}.__init__")
            return [init] if init in self.funcs else []
        if ref.kind == "self":
            cls = info.cls
            seen: set[tuple[str, str]] = set()
            module = info.module
            while cls is not None and (module, cls.name) not in seen:
                seen.add((module, cls.name))
                cand = (module, f"{cls.name}.{ref.name}")
                if cand in self.funcs:
                    return [cand]
                module, cls = self._first_base(module, cls)
            return sorted(self.by_attr.get(ref.name, []))
        # kind == "attr": every project method with this name (weak)
        return sorted(self.by_attr.get(ref.name, []))

    def _first_base(self, module: str, cls: ast.ClassDef
                    ) -> tuple[str, Optional[ast.ClassDef]]:
        """The first resolvable project base class, if any."""
        for base in self.class_bases.get((module, cls.name), []):
            name = (base.id if isinstance(base, ast.Name)
                    else base.attr if isinstance(base, ast.Attribute)
                    else None)
            if name is None:
                continue
            src = self.sources.get(module)
            target = self.imports.get(module, {}).get(name)
            cand_module, cand_name = module, name
            if target is not None and target[1] is not None:
                cand_module, cand_name = target
            cand_src = self.sources.get(cand_module)
            if cand_src is None:
                continue
            for node in ast.walk(cand_src.tree):
                if isinstance(node, ast.ClassDef) and node.name == cand_name:
                    return cand_module, node
        return module, None

def build_call_graph(sources: Sequence[SourceFile]) -> CallGraph:
    return CallGraph(sources)


def iter_functions(tree: ast.Module) -> Iterable[ast.AST]:
    """Top-level functions and class methods of a module."""
    for node in tree.body:
        if isinstance(node, _FUNC_DEFS):
            yield node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, _FUNC_DEFS):
                    yield item
