"""KTAU5xx: shared-mutable-state escape analysis.

ROADMAP item 1 shards the cluster simulation across node groups.  That
is only correct if no mutable state is reachable from two shards: every
module-level mutable binding, class-level mutable attribute, or function
that mutates module state is a potential cross-shard channel that would
silently break conservative-window parallelism.

The rules, over the shard substrate (``sim``/``kernel``/``cluster``/
``core``/``obs``/``tau``):

* **KTAU501** — module-level mutable binding (list/dict/set literal or
  comprehension, mutable builtin constructor, or instantiation of a
  project class that is not a frozen dataclass).  Sanctioned singletons
  must appear in the allowlist manifest
  (:mod:`repro.lint.manifest`) with a classification and reason.
* **KTAU502** — class-level mutable attribute: one object shared by
  every instance of the class, i.e. by every node that instantiates it.
  (``dataclasses.field`` defaults are per-instance and exempt.)
* **KTAU503** — function-scope mutation of module-level state: a
  ``global`` rebind, a mutating method call (``.append``/``.update``/
  …), a subscript store on a module-level name, or an attribute store
  through an imported module alias.  Allowlisted bindings may be
  mutated (the manifest reason must justify it).
* **KTAU504** — manifest audit: entries whose binding no longer exists
  in the linted tree, whose classification is unknown, or whose reason
  is empty.  Keeps the allowlist from rotting into a blanket waiver.

Analysis is static and conservative: values the analysis cannot prove
mutable (calls into unknown code, plain names) are not flagged.  The
manifest is read from the linted sources when one of them defines
``SHARD_ALLOWLIST`` (so fixture trees are self-contained), falling back
to the in-repo :data:`repro.lint.manifest.SHARD_ALLOWLIST`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.lint.engine import ProjectRule, SourceFile, register
from repro.lint.findings import Finding, Severity

#: builtin constructors whose result is mutable
_MUTABLE_BUILTINS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter", "ChainMap",
}

#: literal/comprehension nodes that build a mutable container
_MUTABLE_LITERALS = {
    ast.List: "list literal", ast.Dict: "dict literal",
    ast.Set: "set literal", ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension", ast.DictComp: "dict comprehension",
}

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "popleft", "extendleft", "subtract",
}

#: base-class names marking a class as an immutable value type
_IMMUTABLE_BASES = {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
                    "NamedTuple", "frozenset", "tuple", "Protocol"}

#: classifications KTAU504 accepts (mirrors manifest.ALLOWED_CLASSIFICATIONS;
#: duplicated here so fixture trees need not ship the manifest module)
_CLASSIFICATIONS = {"singleton", "shard-local", "message-carried"}


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = deco.func
        dotted = (name.attr if isinstance(name, ast.Attribute)
                  else name.id if isinstance(name, ast.Name) else "")
        if dotted != "dataclass":
            continue
        for kw in deco.keywords:
            if (kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True):
                return True
    return False


def _is_immutable_class(node: ast.ClassDef) -> bool:
    if _is_frozen_dataclass(node):
        return True
    for base in node.bases:
        name = (base.attr if isinstance(base, ast.Attribute)
                else base.id if isinstance(base, ast.Name) else "")
        if name in _IMMUTABLE_BASES:
            return True
    return False


def _import_map(tree: ast.Module, module: str) -> dict[str, tuple[str, Optional[str]]]:
    """local name -> (source module, symbol or None for whole-module)."""
    out: dict[str, tuple[str, Optional[str]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name, None)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative: resolve against this module
                parts = module.split(".")
                parts = parts[:len(parts) - node.level]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = (base, alias.name)
    return out


def _module_bindings(source: SourceFile) -> dict[str, int]:
    """Module-level assigned names -> first line of assignment."""
    out: dict[str, int] = {}
    for stmt in source.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for t in targets:
            for node in ast.walk(t):
                if isinstance(node, ast.Name):
                    out.setdefault(node.id, stmt.lineno)
    return out


class _ClassIndex:
    """(module, class name) -> ClassDef across the whole tree."""

    def __init__(self, sources: Sequence[SourceFile]):
        self.classes: dict[tuple[str, str], ast.ClassDef] = {}
        for src in sources:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes[(src.module, node.name)] = node

    def resolve(self, source: SourceFile,
                imports: dict[str, tuple[str, Optional[str]]],
                func: ast.expr) -> Optional[ast.ClassDef]:
        """The project ClassDef a call's func refers to, if resolvable."""
        if isinstance(func, ast.Name):
            local = self.classes.get((source.module, func.id))
            if local is not None:
                return local
            target = imports.get(func.id)
            if target is not None and target[1] is not None:
                return self.classes.get(target)
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target = imports.get(func.value.id)
            if target is not None and target[1] is None:
                return self.classes.get((target[0], func.attr))
        return None


def _mutable_reason(source: SourceFile, index: _ClassIndex,
                    imports: dict[str, tuple[str, Optional[str]]],
                    value: ast.expr) -> Optional[str]:
    """Why ``value`` builds a mutable object, or None if unprovable."""
    for node_type, label in _MUTABLE_LITERALS.items():
        if isinstance(value, node_type):
            return label
    if isinstance(value, ast.Call):
        func = value.func
        name = (func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else "")
        if name in _MUTABLE_BUILTINS:
            return f"{name}() constructor"
        cls = index.resolve(source, imports, value.func)
        if cls is not None and not _is_immutable_class(cls):
            return f"instance of mutable class {cls.name}"
    return None


def _find_manifest(sources: Sequence[SourceFile]
                   ) -> Optional[tuple[SourceFile, ast.expr]]:
    """The source (and dict AST node) defining SHARD_ALLOWLIST, if any."""
    for src in sources:
        for stmt in src.tree.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if (isinstance(target, ast.Name)
                    and target.id == "SHARD_ALLOWLIST"):
                return src, value
    return None


def _parse_manifest(node: ast.expr) -> dict[str, tuple[object, object, int]]:
    """key -> (classification, reason, line); tolerant of bad shapes."""
    out: dict[str, tuple[object, object, int]] = {}
    if not isinstance(node, ast.Dict):
        return out
    for key_node, val_node in zip(node.keys, node.values):
        try:
            key = ast.literal_eval(key_node) if key_node is not None else None
            val = ast.literal_eval(val_node)
        except (ValueError, SyntaxError):
            continue
        if not isinstance(key, str):
            continue
        cls, reason = (val if isinstance(val, tuple) and len(val) == 2
                       else (None, None))
        out[key] = (cls, reason, key_node.lineno)
    return out


@register
class SharedStateRule(ProjectRule):
    """KTAU501-504: mutable state escaping the per-node ownership tree."""

    rule_id = "KTAU501"
    name = "shared-mutable-state"
    severity = Severity.ERROR
    description = ("Module-level or class-level mutable state in the shard "
                   "substrate must be allowlisted in the sharing manifest")
    scope = ("repro.sim", "repro.kernel", "repro.cluster", "repro.core",
             "repro.obs", "repro.tau")
    emits = ("KTAU501", "KTAU502", "KTAU503", "KTAU504")

    def __init__(self, allowlist: Optional[dict[str, tuple[str, str]]] = None):
        #: explicit allowlist override (tests); None = discover
        self._allowlist_override = allowlist

    # -- manifest ---------------------------------------------------------
    def _allowlist(self, sources: Sequence[SourceFile]
                   ) -> tuple[dict[str, tuple[object, object, int]],
                              Optional[SourceFile]]:
        if self._allowlist_override is not None:
            return ({k: (c, r, 0) for k, (c, r)
                     in self._allowlist_override.items()}, None)
        found = _find_manifest(sources)
        if found is not None:
            src, node = found
            return _parse_manifest(node), src
        from repro.lint import manifest  # in-repo fallback
        return ({k: (c, r, 0) for k, (c, r)
                 in manifest.SHARD_ALLOWLIST.items()}, None)

    # -- the check --------------------------------------------------------
    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Finding]:
        findings: list[Finding] = []
        index = _ClassIndex(sources)
        allowlist, manifest_src = self._allowlist(sources)
        # The manifest module is the declaration table, not shard state.
        scoped = [s for s in sources if self.applies(s)
                  and s is not manifest_src
                  and s.module != "repro.lint.manifest"]
        bindings = {s.module: _module_bindings(s) for s in sources}
        for src in scoped:
            imports = _import_map(src.tree, src.module)
            findings.extend(self._check_globals(src, index, imports, allowlist))
            findings.extend(self._check_class_attrs(src, index, imports))
            findings.extend(self._check_mutations(src, imports, allowlist))
        findings.extend(self._check_manifest(
            sources, manifest_src, allowlist, bindings))
        return findings

    def _emit(self, rule_id: str, src: SourceFile, line: int,
              message: str) -> Finding:
        return Finding(rule_id, Severity.ERROR, str(src.path), line, message)

    def _check_globals(self, src, index, imports, allowlist):
        for stmt in src.tree.body:
            pairs: list[tuple[str, ast.expr]] = []
            if isinstance(stmt, ast.Assign):
                pairs = [(t.id, stmt.value) for t in stmt.targets
                         if isinstance(t, ast.Name)]
            elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                    and isinstance(stmt.target, ast.Name)):
                pairs = [(stmt.target.id, stmt.value)]
            for name, value in pairs:
                if name.startswith("__"):  # __all__ and friends
                    continue
                reason = _mutable_reason(src, index, imports, value)
                if reason is None:
                    continue
                key = f"{src.module}.{name}"
                if key in allowlist:
                    continue
                yield self._emit(
                    "KTAU501", src, stmt.lineno,
                    f"module-level mutable state '{name}' ({reason}) is "
                    f"reachable from every shard; make it shard-local or "
                    f"allowlist '{key}' in the sharing manifest")

    def _check_class_attrs(self, src, index, imports):
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_immutable_class(node):
                continue
            for stmt in node.body:
                pairs: list[tuple[str, ast.expr]] = []
                if isinstance(stmt, ast.Assign):
                    pairs = [(t.id, stmt.value) for t in stmt.targets
                             if isinstance(t, ast.Name)]
                elif (isinstance(stmt, ast.AnnAssign)
                        and stmt.value is not None
                        and isinstance(stmt.target, ast.Name)):
                    pairs = [(stmt.target.id, stmt.value)]
                for name, value in pairs:
                    if (isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Name)
                            and value.func.id == "field"):
                        continue  # dataclasses.field: per-instance default
                    reason = _mutable_reason(src, index, imports, value)
                    if reason is None:
                        continue
                    yield self._emit(
                        "KTAU502", src, stmt.lineno,
                        f"class-level mutable attribute "
                        f"'{node.name}.{name}' ({reason}) is shared by "
                        f"every instance across shards; initialise it in "
                        f"__init__ instead")

    def _check_mutations(self, src, imports, allowlist):
        module_names = set(_module_bindings(src))
        for func in ast.walk(src.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared_global: set[str] = set()
            local: set[str] = {a.arg for a in func.args.args
                               + func.args.posonlyargs + func.args.kwonlyargs}
            if func.args.vararg:
                local.add(func.args.vararg.arg)
            if func.args.kwarg:
                local.add(func.args.kwarg.arg)
            nested: set[int] = set()
            for node in ast.walk(func):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)) and node is not func:
                    nested.update(id(n) for n in ast.walk(node))
            for node in ast.walk(func):
                if id(node) in nested:
                    continue  # nested scopes analysed on their own walk
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                elif isinstance(node, (ast.Assign, ast.AnnAssign,
                                       ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        if isinstance(t, ast.Name):
                            if t.id in declared_global:
                                key = f"{src.module}.{t.id}"
                                if key not in allowlist:
                                    yield self._emit(
                                        "KTAU503", src, node.lineno,
                                        f"function '{func.name}' rebinds "
                                        f"module-level '{t.id}' via global; "
                                        f"shard-owned state must live on a "
                                        f"node object (or allowlist "
                                        f"'{key}')")
                            else:
                                local.add(t.id)
                        elif (isinstance(t, ast.Subscript)
                                and isinstance(t.value, ast.Name)
                                and t.value.id in module_names
                                and t.value.id not in local):
                            key = f"{src.module}.{t.value.id}"
                            if key not in allowlist:
                                yield self._emit(
                                    "KTAU503", src, node.lineno,
                                    f"function '{func.name}' stores into "
                                    f"module-level '{t.value.id}'; mutation "
                                    f"of process-wide state crosses shards "
                                    f"(or allowlist '{key}')")
                        elif (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id in imports
                                and imports[t.value.id][1] is None):
                            mod = imports[t.value.id][0]
                            key = f"{mod}.{t.attr}"
                            if (mod.startswith("repro")
                                    and key not in allowlist):
                                yield self._emit(
                                    "KTAU503", src, node.lineno,
                                    f"function '{func.name}' assigns "
                                    f"'{t.value.id}.{t.attr}' — mutating "
                                    f"another module's state from function "
                                    f"scope (or allowlist '{key}')")
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS
                        and isinstance(node.func.value, ast.Name)):
                    name = node.func.value.id
                    if name in module_names and name not in local:
                        key = f"{src.module}.{name}"
                        if key not in allowlist:
                            yield self._emit(
                                "KTAU503", src, node.lineno,
                                f"function '{func.name}' calls "
                                f"'{name}.{node.func.attr}()' on module-"
                                f"level state; shard-owned state must be "
                                f"reached through a node object (or "
                                f"allowlist '{key}')")
                elif isinstance(node, ast.For):
                    for t in ast.walk(node.target):
                        if isinstance(t, ast.Name):
                            local.add(t.id)

    def _check_manifest(self, sources, manifest_src, allowlist, bindings):
        if self._allowlist_override is not None and manifest_src is None:
            # injected allowlists are the test's responsibility to audit
            return
        # Locate the file to anchor findings on: the discovered manifest
        # source, else the in-repo manifest module if it was linted.
        anchor = manifest_src
        if anchor is None:
            for src in sources:
                if src.module == "repro.lint.manifest":
                    anchor = src
                    break
        if anchor is None:
            return
        for key, (cls, reason, line) in sorted(allowlist.items()):
            line = line or 1
            if cls not in _CLASSIFICATIONS:
                yield self._emit(
                    "KTAU504", anchor, line,
                    f"manifest entry '{key}' has unknown classification "
                    f"{cls!r} (expected one of "
                    f"{sorted(_CLASSIFICATIONS)})")
            if not isinstance(reason, str) or not reason.strip():
                yield self._emit(
                    "KTAU504", anchor, line,
                    f"manifest entry '{key}' has no reason; every "
                    f"sanctioned singleton must say why it is safe")
            module, _, name = key.rpartition(".")
            # Walk outward: "a.b.c.NAME" could be module a.b.c or a.b
            # with class attr — only the module form is supported.
            if module in bindings and name not in bindings[module]:
                yield self._emit(
                    "KTAU504", anchor, line,
                    f"stale manifest entry '{key}': module '{module}' "
                    f"defines no module-level binding '{name}'")
