"""KTAU7xx: simulated-kernel context safety (lockdep, statically).

Linux's lockdep catches "might sleep from atomic context" at run time;
the simulated kernel has exactly the same hazard class, and a static
call graph can prove its absence instead of waiting for a workload to
trip it:

* **KTAU701** — a blocking operation (a ``yield Block(...)`` waitqueue
  sleep, directly or transitively) is reachable from a declared
  interrupt-context root without passing through a sanctioned context
  handoff.  IRQ/softirq work (span-tree delivery, NIC rx/tx paths) must
  never sleep.
* **KTAU702** — interrupt-context code calls a scheduler context-switch
  primitive directly (``_advance``/``_run_task``/``_deschedule``/...).
  The only legal way out of IRQ context is a declared boundary such as
  ``Scheduler.wake`` (the simulation's ``try_to_wake_up``).
* **KTAU703** — a generator function is passed as an engine callback
  (``engine.schedule(..., gen_fn)``): calling it builds a generator and
  discards it, so the event silently does nothing.

The roots and boundaries are *data, not lint config*: kernel modules
declare ``IRQ_CONTEXT_ROOTS`` / ``IRQ_CONTEXT_BOUNDARIES`` tuples (see
:mod:`repro.kernel.irq`), and this pass reads them from the AST.  The
declaration lives with the code it describes, and fixture trees can
declare their own.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.lint.callgraph import CallGraph, FuncInfo
from repro.lint.engine import ProjectRule, SourceFile, register
from repro.lint.findings import Finding, Severity

#: scheduler primitives that perform or unwind a context switch; calling
#: them from IRQ context corrupts the interrupted task's accounting
_SCHED_MUTATORS = {
    "_advance", "_run_task", "_deschedule", "_cpu_reschedule",
    "_do_exit", "_block", "kill_blocked", "_close_frames", "start_task",
}

#: engine methods taking a zero-argument callback as second argument
_ENGINE_SCHEDULERS = {"schedule", "schedule_at"}


def _declared_tuples(sources: Sequence[SourceFile],
                     name: str) -> list[str]:
    """Every string in module-level ``NAME = ("...", ...)`` declarations."""
    out: list[str] = []
    for src in sources:
        for stmt in src.tree.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == name):
                continue
            if isinstance(value, (ast.Tuple, ast.List)):
                out.extend(elt.value for elt in value.elts
                           if isinstance(elt, ast.Constant)
                           and isinstance(elt.value, str))
    return out


def _match_spec(graph: CallGraph, spec: str) -> list[tuple[str, str]]:
    """Function keys matching a root/boundary spec.

    ``"Class.method"`` and bare ``"function"`` match by qualname in any
    module; a fully-dotted ``"pkg.mod.function"`` form matches module +
    qualname.
    """
    keys = graph.by_qualname.get(spec)
    if keys:
        return sorted(keys)
    if "." in spec:
        module, _, qual = spec.rpartition(".")
        return sorted(k for k in graph.by_qualname.get(qual, ())
                      if k[0] == module)
    return []


@register
class IrqContextRule(ProjectRule):
    """KTAU701-703: no sleeping or context-switching in IRQ context."""

    rule_id = "KTAU701"
    name = "irq-context-safety"
    severity = Severity.ERROR
    description = ("blocking operations and context-switch primitives "
                   "must be unreachable from declared IRQ-context roots")
    emits = ("KTAU701", "KTAU702", "KTAU703")

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Finding]:
        graph = CallGraph(sources)
        yield from self._check_irq_reachability(sources, graph)
        yield from self._check_generator_callbacks(sources, graph)

    def _emit(self, rule_id: str, path: str, line: int,
              message: str) -> Finding:
        return Finding(rule_id, Severity.ERROR, path, line, message)

    # -- KTAU701 / KTAU702 ------------------------------------------------
    def _check_irq_reachability(self, sources, graph: CallGraph):
        roots: list[tuple[str, str]] = []
        for spec in _declared_tuples(sources, "IRQ_CONTEXT_ROOTS"):
            roots.extend(_match_spec(graph, spec))
        if not roots:
            return
        boundaries: set[tuple[str, str]] = set()
        for spec in _declared_tuples(sources, "IRQ_CONTEXT_BOUNDARIES"):
            boundaries.update(_match_spec(graph, spec))
        # BFS over the IRQ-context region: stop at boundaries (their
        # bodies run in task context), track one witness chain per node.
        # Any transitive sleep is caught at its syntactic site, since the
        # BFS walks the same call edges the sleep is reached through.
        parents: dict[tuple[str, str], tuple[str, str]] = {}
        seen: set[tuple[str, str]] = set(roots)
        frontier = sorted(set(roots))
        reported: set[tuple[str, tuple[str, str]]] = set()
        while frontier:
            nxt: list[tuple[str, str]] = []
            for key in frontier:
                info = graph.funcs[key]
                if info.blocking:
                    line, reason = info.blocking[0]
                    yield from self._report_block(
                        graph, parents, key, key, line, reason, reported)
                for ref in info.calls:
                    for cand in graph.resolve(info, ref):
                        if cand[1].rpartition(".")[2] in _SCHED_MUTATORS:
                            if ("KTAU702", cand) not in reported:
                                reported.add(("KTAU702", cand))
                                chain = self._chain(parents, key)
                                yield self._emit(
                                    "KTAU702", str(graph.sources[
                                        info.module].path), ref.line,
                                    f"IRQ context calls context-switch "
                                    f"primitive '{cand[1]}' (IRQ chain: "
                                    f"{' -> '.join(chain)}); hand off "
                                    f"through a declared boundary "
                                    f"(IRQ_CONTEXT_BOUNDARIES) instead")
                            continue
                        if cand in boundaries or cand in seen:
                            continue
                        seen.add(cand)
                        parents[cand] = key
                        nxt.append(cand)
            frontier = sorted(nxt)

    def _report_block(self, graph, parents, key, site_key, line, reason,
                      reported):
        if ("KTAU701", key) in reported:
            return
        reported.add(("KTAU701", key))
        chain = self._chain(parents, key)
        info = graph.funcs[site_key]
        yield self._emit(
            "KTAU701", str(graph.sources[info.module].path), line,
            f"blocking operation reachable from IRQ context: "
            f"{' -> '.join(chain)} {reason}; IRQ/softirq work must "
            f"never sleep")

    @staticmethod
    def _chain(parents, key) -> list[str]:
        chain = [key]
        while chain[-1] in parents:
            chain.append(parents[chain[-1]])
        return [k[1] for k in reversed(chain)]

    # -- KTAU703 ----------------------------------------------------------
    def _check_generator_callbacks(self, sources, graph: CallGraph):
        for key, info in sorted(graph.funcs.items()):
            for ref_call in self._engine_calls(info):
                cand = self._callback_target(graph, info, ref_call)
                if cand is None:
                    continue
                target, line = cand
                if graph.funcs[target].is_generator:
                    yield self._emit(
                        "KTAU703",
                        str(graph.sources[info.module].path), line,
                        f"generator function '{target[1]}' passed as an "
                        f"engine callback in '{info.qualname}': calling "
                        f"it builds a generator and discards it, so the "
                        f"event does nothing")

    @staticmethod
    def _engine_calls(info: FuncInfo) -> list[ast.Call]:
        out = []
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ENGINE_SCHEDULERS
                    and len(node.args) >= 2):
                out.append(node)
        return out

    def _callback_target(self, graph: CallGraph, info: FuncInfo,
                         call: ast.Call
                         ) -> Optional[tuple[tuple[str, str], int]]:
        arg = call.args[1]
        ref = None
        if isinstance(arg, ast.Name):
            ref = ("name", arg.id)
        elif (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id in ("self", "cls")):
            ref = ("self", arg.attr)
        if ref is None:
            return None
        from repro.lint.callgraph import CallRef
        cands = graph.resolve(info, CallRef(ref[0], ref[1], call.lineno))
        # Only unambiguous, strong resolutions: a weak multi-candidate
        # match would accuse the wrong function.
        if len(cands) == 1:
            return cands[0], call.lineno
        return None
