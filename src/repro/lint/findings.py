"""Structured lint findings.

A :class:`Finding` is the unit of ktaulint output: one rule violation at
one source location, with a stable rule ID (``KTAUnnn``), a severity, and
a human-readable message.  Findings render identically in the text and
JSON output formats so tests can assert on exact locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.IntEnum):
    """How bad a finding is; the CLI exit code ignores ``INFO``."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str

    def format(self) -> str:
        """The text-format line: ``path:line: ID severity message``."""
        return (f"{self.path}:{self.line}: {self.rule_id} "
                f"{self.severity} {self.message}")

    def to_dict(self) -> dict:
        """The JSON-format object."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule_id, self.message)
