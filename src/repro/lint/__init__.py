"""ktaulint: static analysis and sanitizers for the KTAU reproduction.

The paper's kernel patch enforced its core invariants by convention:
every instrumentation entry has a matching exit on every control path,
event identities are unique, measurement is deterministic enough to
compare across nodes.  This package enforces them by analysis, so a
refactor that silently breaks one is caught at lint time:

* :mod:`repro.lint.balance` — path-sensitive entry/exit pairing proof
  over ``repro.kernel`` / ``repro.core`` (KTAU101-103);
* :mod:`repro.lint.determinism` — wall-clock, unseeded-randomness, and
  set-iteration-order bans over the simulation substrate (KTAU201-204);
* :mod:`repro.lint.registry` — declared-vs-fired instrumentation-point
  cross-reference (KTAU301-304);
* :mod:`repro.lint.api` — ``__all__`` drift and architectural layering
  (KTAU401-402);
* :mod:`repro.lint.sharing` — shared-mutable-state escape analysis with
  an explicit allowlist manifest (:mod:`repro.lint.manifest`), proving
  the shard-isolation prerequisite of parallel DES (KTAU501-504);
* :mod:`repro.lint.imports` — the full module dependency graph: cycle
  detection, transitive layering, and the shard-boundary property
  (KTAU601-603);
* :mod:`repro.lint.contexts` — lockdep-flavoured IRQ-context safety
  over a static call graph (:mod:`repro.lint.callgraph`): interrupt
  work never sleeps or context-switches directly (KTAU701-703).

The static passes have dynamic twins: ``repro.core.measurement.Ktau``'s
opt-in *strict mode* raises on activation-stack imbalance at run time,
and :class:`repro.cluster.shardsan.ShardIsolationSanitizer` tags engine
events with their owning node to catch cross-shard access the escape
analysis reasons about.  Run the linter with ``python -m repro.lint
[paths] [--format=text|json|sarif]`` or ``python -m repro lint``;
suppress an individual finding with a ``# ktaulint: disable=RULE``
comment on the flagged line.
"""

from repro.lint.engine import LintEngine, ProjectRule, Rule, all_rules
from repro.lint.findings import Finding, Severity

__all__ = ["LintEngine", "Rule", "ProjectRule", "all_rules",
           "Finding", "Severity"]
