"""Instrumentation balance: every ``entry`` has an ``exit`` on every path.

This is the lockdep-style analog for KTAU.  The paper's kernel patch
enforced entry/exit pairing by convention; when a pair is unbalanced the
activation-stack inclusive/exclusive accounting silently corrupts (the
runtime drops the sample and bumps ``unmatched_exits``, but the entered
span's time is attributed wrongly forever after).  This rule proves the
pairing statically, per function, by abstract interpretation over the
control-flow structure:

* Each path carries a stack of open instrumentation points (the static
  mirror of ``KtauTaskData.stack``).
* ``If`` forks both branches, *remembering the branch condition*: two
  ``if data is not None:`` guards over the same expression take the same
  branch on the same path, so the pervasive guarded-entry / guarded-exit
  kernel idiom does not false-positive.
* Loops must be net-balanced: a body that leaves the stack different from
  how it found it compounds the imbalance per iteration.
* ``try/finally`` runs the final body on every exit path (the standard
  way kernel code guarantees the exit side); explicit ``return`` /
  ``raise`` / ``break`` / ``continue`` are tracked as abrupt exits.
* ``with ktau.span(...)`` is modelled as balanced push/pop (its
  implementation is the audited try/finally in ``repro.core.measurement``).

Escapes that are split across functions by design (KTAU's voluntary /
involuntary scheduling spans open in ``_ktau_sched_out`` and close in
``_ktau_sched_in``) cannot be proven by any per-function analysis and
carry explicit ``# ktaulint: disable=...`` suppressions at the call site.

Rules
-----
KTAU101
    An ``entry(...)`` is not matched by an ``exit(...)`` on some path
    (fall-through, ``return``, or explicit ``raise``).
KTAU102
    An ``exit(...)`` fires with no matching open ``entry`` on some path
    (never entered, already exited, or out of LIFO order).
KTAU103
    A loop body changes the set of open instrumentation points, so the
    imbalance compounds per iteration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.engine import Rule, SourceFile, register
from repro.lint.findings import Finding, Severity

#: Give up (without findings) when a function's path set exceeds this;
#: condition tracking keeps real kernel code far below it.
MAX_STATES = 256

_INSTR_ATTRS = {"entry", "exit"}


def _point_key(arg: ast.expr) -> str:
    """Canonical identity of the point expression of an entry/exit call.

    ``kernel.point("tcp_sendmsg")`` keys by the literal name; any other
    expression keys by its source text, so ``entry(data, point)`` /
    ``exit(data, point)`` pair up through the shared variable.
    """
    if (isinstance(arg, ast.Call) and isinstance(arg.func, ast.Attribute)
            and arg.func.attr in ("point", "atomic_point") and arg.args):
        first = arg.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return ast.unparse(arg)


def _match_instr_call(call: ast.Call) -> Optional[tuple[str, str]]:
    """``(op, key)`` when ``call`` is an instrumentation entry/exit."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _INSTR_ATTRS:
        return None
    if len(call.args) < 2:  # excludes sys.exit(code) etc.
        return None
    return func.attr, _point_key(call.args[1])


def _match_span_call(call: ast.Call) -> Optional[str]:
    """Point key when ``call`` is a ``*.span(data, point)`` call."""
    func = call.func
    if (isinstance(func, ast.Attribute) and func.attr == "span"
            and len(call.args) >= 2):
        return _point_key(call.args[1])
    return None


def _cond_key(test: ast.expr) -> tuple[str, bool]:
    """``(canonical condition, polarity)`` for branch correlation.

    ``x is None`` and ``x is not None`` canonicalise to the same key with
    opposite polarity, as do ``not E`` / ``E``, so guarded entries and
    guarded exits correlate across statements.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        key, pol = _cond_key(test.operand)
        return key, not pol
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        key = f"{ast.unparse(test.left)} is None"
        return key, isinstance(test.ops[0], ast.Is)
    return ast.unparse(test), True


@dataclass(frozen=True)
class _State:
    """One abstract path: open-instrumentation stack + branch assumptions."""

    stack: tuple[tuple[str, int], ...] = ()  # (point key, entry lineno)
    assumptions: frozenset[tuple[str, bool]] = frozenset()

    def push(self, key: str, line: int) -> "_State":
        return _State(self.stack + ((key, line),), self.assumptions)

    def pop(self) -> "_State":
        return _State(self.stack[:-1], self.assumptions)

    def assume(self, cond: str, value: bool) -> "_State":
        return _State(self.stack,
                      self.assumptions | {(cond, value)})


@dataclass
class _Exit:
    """An abrupt exit (return/raise/break/continue) in flight."""

    kind: str
    state: _State
    line: int


@dataclass
class _BlockResult:
    normal: set[_State] = field(default_factory=set)
    exits: list[_Exit] = field(default_factory=list)
    #: states at statement boundaries (what an except handler may see)
    boundaries: set[_State] = field(default_factory=set)


class _FunctionAnalysis:
    """Path-sensitive balance analysis of one function body."""

    def __init__(self, source: SourceFile, func: ast.AST):
        self.source = source
        self.func = func
        self.findings: list[Finding] = []
        self._reported: set[tuple[str, int, str]] = set()
        self.overflowed = False

    # -- reporting -------------------------------------------------------
    def _report(self, rule_id: str, line: int, message: str) -> None:
        dedup = (rule_id, line, message)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        self.findings.append(Finding(rule_id, Severity.ERROR,
                                     str(self.source.path), line, message))

    # -- instrumentation effects ----------------------------------------
    def _instr_calls(self, stmt: ast.stmt) -> list[tuple[str, str, int]]:
        """Entry/exit calls inside one simple statement, in walk order."""
        out: list[tuple[str, str, int]] = []
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested scopes analysed separately
            if isinstance(node, ast.Call):
                match = _match_instr_call(node)
                if match is not None:
                    out.append((match[0], match[1], node.lineno))
        return out

    def _apply_call(self, states: set[_State], op: str, key: str,
                    line: int) -> set[_State]:
        next_states: set[_State] = set()
        for st in states:
            if op == "entry":
                next_states.add(st.push(key, line))
                continue
            # exit
            if not st.stack:
                self._report("KTAU102", line,
                             f"exit('{key}') with no open entry on this path")
                next_states.add(st)
            elif st.stack[-1][0] != key:
                open_key, open_line = st.stack[-1]
                if any(k == key for k, _ in st.stack):
                    self._report(
                        "KTAU102", line,
                        f"exit('{key}') out of LIFO order: innermost open "
                        f"entry is '{open_key}' (line {open_line})")
                else:
                    self._report(
                        "KTAU102", line,
                        f"exit('{key}') does not match the innermost open "
                        f"entry '{open_key}' (line {open_line})")
                next_states.add(st)
            else:
                next_states.add(st.pop())
        return next_states

    # -- block analysis --------------------------------------------------
    def _analyze_block(self, stmts: list[ast.stmt],
                       states: set[_State]) -> _BlockResult:
        result = _BlockResult()
        current = set(states)
        result.boundaries |= current
        for stmt in stmts:
            if not current:
                break
            if len(current) > MAX_STATES:
                self.overflowed = True
                break
            current = self._analyze_stmt(stmt, current, result)
            result.boundaries |= current
        result.normal = current
        return result

    def _analyze_stmt(self, stmt: ast.stmt, states: set[_State],
                      result: _BlockResult) -> set[_State]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return states
        if isinstance(stmt, ast.If):
            return self._analyze_if(stmt, states, result)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._analyze_loop(stmt, states, result)
        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar")
                                         and isinstance(stmt, ast.TryStar)):
            return self._analyze_try(stmt, states, result)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._analyze_with(stmt, states, result)
        if isinstance(stmt, ast.Match):
            return self._analyze_match(stmt, states, result)
        if isinstance(stmt, ast.Return):
            for st in self._apply_simple(stmt, states):
                result.exits.append(_Exit("return", st, stmt.lineno))
            return set()
        if isinstance(stmt, ast.Raise):
            for st in self._apply_simple(stmt, states):
                result.exits.append(_Exit("raise", st, stmt.lineno))
            return set()
        if isinstance(stmt, ast.Break):
            for st in states:
                result.exits.append(_Exit("break", st, stmt.lineno))
            return set()
        if isinstance(stmt, ast.Continue):
            for st in states:
                result.exits.append(_Exit("continue", st, stmt.lineno))
            return set()
        # simple statement: apply any instrumentation calls it contains
        return self._apply_simple(stmt, states)

    def _apply_simple(self, stmt: ast.stmt, states: set[_State]) -> set[_State]:
        for op, key, line in self._instr_calls(stmt):
            states = self._apply_call(states, op, key, line)
        return states

    def _analyze_if(self, stmt: ast.If, states: set[_State],
                    result: _BlockResult) -> set[_State]:
        cond, polarity = _cond_key(stmt.test)
        taken: set[_State] = set()
        not_taken: set[_State] = set()
        for st in states:
            known = dict(st.assumptions).get(cond)
            if known is None:
                taken.add(st.assume(cond, polarity))
                not_taken.add(st.assume(cond, not polarity))
            elif known == polarity:
                taken.add(st)
            else:
                not_taken.add(st)
        out: set[_State] = set()
        if taken:
            bres = self._analyze_block(stmt.body, taken)
            out |= bres.normal
            result.exits.extend(bres.exits)
            result.boundaries |= bres.boundaries
        if not_taken:
            if stmt.orelse:
                eres = self._analyze_block(stmt.orelse, not_taken)
                out |= eres.normal
                result.exits.extend(eres.exits)
                result.boundaries |= eres.boundaries
            else:
                out |= not_taken
        return out

    def _analyze_loop(self, stmt: ast.stmt, states: set[_State],
                      result: _BlockResult) -> set[_State]:
        body = stmt.body  # type: ignore[attr-defined]
        bres = self._analyze_block(body, states)
        result.boundaries |= bres.boundaries
        out: set[_State] = set(states)  # zero-iteration path
        stacks_in = {st.stack for st in states}
        # Fall-through and `continue` states reach the next iteration: the
        # stack must be exactly as the iteration found it, or imbalance
        # compounds per iteration.
        repeat = set(bres.normal)
        for ex in bres.exits:
            if ex.kind == "continue":
                repeat.add(ex.state)
            elif ex.kind == "break":
                out.add(ex.state)
            else:
                result.exits.append(ex)
        for st in repeat:
            if st.stack not in stacks_in:
                opened = [f"'{k}' (line {ln})" for k, ln in st.stack
                          if all(k != k2 for stack in stacks_in
                                 for k2, _ in stack)]
                detail = ("opens " + ", ".join(opened)) if opened else \
                    "changes the open-instrumentation stack"
                self._report(
                    "KTAU103", stmt.lineno,
                    f"loop body {detail} without closing it each iteration")
        orelse = getattr(stmt, "orelse", None)
        if orelse:
            eres = self._analyze_block(orelse, out)
            result.exits.extend(eres.exits)
            result.boundaries |= eres.boundaries
            return eres.normal
        return out

    def _analyze_try(self, stmt: ast.stmt, states: set[_State],
                     result: _BlockResult) -> set[_State]:
        bres = self._analyze_block(stmt.body, states)  # type: ignore[attr-defined]
        handlers = stmt.handlers  # type: ignore[attr-defined]
        finalbody = stmt.finalbody  # type: ignore[attr-defined]
        orelse = stmt.orelse  # type: ignore[attr-defined]

        # What survives the try body normally continues into else.
        normal = bres.normal
        if orelse and normal:
            eres = self._analyze_block(orelse, normal)
            normal = eres.normal
            bres.exits.extend(eres.exits)
            bres.boundaries |= eres.boundaries

        # An exception may surface at any statement boundary inside the
        # try body; each handler sees all of those states.
        handler_normal: set[_State] = set()
        handler_exits: list[_Exit] = []
        for handler in handlers:
            hres = self._analyze_block(handler.body, set(bres.boundaries))
            handler_normal |= hres.normal
            handler_exits.extend(hres.exits)
            bres.boundaries |= hres.boundaries

        pending_exits = bres.exits + handler_exits
        out_normal = normal | handler_normal

        if finalbody:
            # The final body runs on the normal path...
            out: set[_State] = set()
            if out_normal:
                fres = self._analyze_block(finalbody, out_normal)
                out = fres.normal
                result.exits.extend(fres.exits)
                result.boundaries |= fres.boundaries
            # ... and again on every abrupt exit threading through it.
            for ex in pending_exits:
                fres = self._analyze_block(finalbody, {ex.state})
                result.boundaries |= fres.boundaries
                for st in fres.normal:
                    result.exits.append(_Exit(ex.kind, st, ex.line))
                result.exits.extend(fres.exits)
            # An exception raised *inside* try with no matching handler
            # also runs finally; those propagating states are already
            # represented by the handler boundary states only if handlers
            # exist.  When there are no handlers, model the propagating
            # exception explicitly so `entry(); try: ...; finally: exit()`
            # proves balanced on the exceptional path too.
            if not handlers:
                for st in bres.boundaries:
                    fres = self._analyze_block(finalbody, {st})
                    # Exceptional propagation continues after finally; the
                    # function-level check only cares that the stack is
                    # restored, which fres.normal now reflects.  We do not
                    # report these as raise exits (the exception source is
                    # implicit), but an unbalanced stack here will still
                    # surface on the explicit paths above.
                    result.boundaries |= fres.normal
        else:
            result.exits.extend(pending_exits)
            out = out_normal
        result.boundaries |= bres.boundaries
        return out

    def _analyze_with(self, stmt: ast.stmt, states: set[_State],
                      result: _BlockResult) -> set[_State]:
        span_keys: list[tuple[str, int]] = []
        for item in stmt.items:  # type: ignore[attr-defined]
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                key = _match_span_call(expr)
                if key is not None:
                    span_keys.append((key, expr.lineno))
        entered = set(states)
        for key, line in span_keys:
            entered = {st.push(key, line) for st in entered}
        bres = self._analyze_block(stmt.body, entered)  # type: ignore[attr-defined]
        result.boundaries |= bres.boundaries

        def _leave(st: _State, where: int) -> _State:
            # span() guarantees the pop on every exit path (try/finally).
            for key, line in reversed(span_keys):
                if st.stack and st.stack[-1][0] == key:
                    st = st.pop()
                else:
                    self._report(
                        "KTAU101", line,
                        f"span('{key}') not innermost at with-block exit "
                        f"(line {where}); entries inside the block leak")
            return st
        for ex in bres.exits:
            result.exits.append(_Exit(ex.kind, _leave(ex.state, ex.line),
                                      ex.line))
        return {_leave(st, stmt.lineno) for st in bres.normal}

    def _analyze_match(self, stmt: ast.Match, states: set[_State],
                       result: _BlockResult) -> set[_State]:
        out: set[_State] = set()
        exhaustive = False
        for case in stmt.cases:
            cres = self._analyze_block(case.body, set(states))
            out |= cres.normal
            result.exits.extend(cres.exits)
            result.boundaries |= cres.boundaries
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                exhaustive = True
        if not exhaustive:
            out |= states  # no case matched
        return out

    # -- entry point -----------------------------------------------------
    def run(self) -> list[Finding]:
        body = self.func.body  # type: ignore[attr-defined]
        result = _BlockResult()
        final = self._analyze_block(body, {_State()})
        result.exits.extend(final.exits)
        if self.overflowed:
            return []  # too many paths to prove anything; stay silent
        for st in final.normal:
            self._flag_unclosed(st, "at function end", None)
        for ex in result.exits:
            if ex.kind in ("return", "raise"):
                self._flag_unclosed(ex.state, f"on {ex.kind}", ex.line)
        return self.findings

    def _flag_unclosed(self, st: _State, where: str,
                       line: Optional[int]) -> None:
        for key, entry_line in st.stack:
            at = f" at line {line}" if line is not None else ""
            self._report(
                "KTAU101", entry_line,
                f"entry('{key}') has no matching exit {where}{at}")


def _balance_findings(source: SourceFile) -> list[Finding]:
    """All balance findings for a file (computed once, shared by rules)."""
    cached = getattr(source, "_balance_cache", None)
    if cached is None:
        cached = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cached.extend(_FunctionAnalysis(source, node).run())
        source._balance_cache = cached  # type: ignore[attr-defined]
    return cached


class _BalanceBase(Rule):
    """Shared driver: analyse every function; emit only this rule's ID."""

    scope = ("repro.kernel", "repro.core")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for finding in _balance_findings(source):
            if finding.rule_id == self.rule_id:
                yield finding


@register
class UnclosedEntryRule(_BalanceBase):
    rule_id = "KTAU101"
    name = "unclosed-entry"
    description = ("an instrumentation entry() is not matched by an exit() "
                   "on every control-flow path")


@register
class UnmatchedExitRule(_BalanceBase):
    rule_id = "KTAU102"
    name = "unmatched-exit"
    description = ("an instrumentation exit() fires with no matching open "
                   "entry(), or out of LIFO order")


@register
class LoopImbalanceRule(_BalanceBase):
    rule_id = "KTAU103"
    name = "loop-imbalance"
    description = ("a loop body changes the set of open instrumentation "
                   "points, compounding imbalance per iteration")
