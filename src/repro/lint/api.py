"""API hygiene: ``__all__`` drift and cross-layer imports.

KTAU301-style registry drift has an API-surface analog: a package whose
``__all__`` advertises names it no longer defines (star-imports raise
``AttributeError``; documentation lies), and a lower layer that reaches
*up* the architecture (``repro.kernel`` importing ``repro.analysis``
would let a presentation refactor break the measured substrate).

KTAU401
    ``__all__`` drift: an entry that the module does not define or
    import, or a duplicated entry.
KTAU402
    Cross-layer import violation: a module imports from a ``repro``
    package that its layer is not allowed to depend on.  The allowed
    dependency map mirrors the architecture (sim at the bottom; core
    above sim; the kernel above core; measurement clients, workloads
    and the cluster above the kernel; analysis and experiments on top).
    A second-level subpackage may declare its own, tighter contract
    (``analysis.bottlenecks`` must never import the monitor).
    ``if TYPE_CHECKING:`` imports are exempt — they never execute.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import Rule, SourceFile, register
from repro.lint.findings import Finding

#: package -> repro sub-packages it may import from at run time.
#: Keys may name a second-level subpackage ("analysis.bottlenecks") to
#: scope it more tightly than its parent layer; the most specific key
#: wins.  Top-level modules (repro.cli, repro.__main__, repro/__init__)
#: are the application shell and may import anything.
LAYER_DEPS: dict[str, set[str]] = {
    # Harness observability is the substrate below the substrate: every
    # layer may publish into it, and it may import nothing back.
    "obs": set(),
    "sim": {"obs"},
    "core": {"obs", "sim"},
    "kernel": {"core", "sim"},
    "tau": {"core", "kernel", "sim"},
    "workloads": {"kernel", "sim", "tau"},
    "cluster": {"core", "kernel", "sim", "tau"},
    "oprofile": {"analysis", "cluster", "core", "kernel", "sim", "tau",
                 "workloads"},
    "analysis": {"cluster", "core", "kernel", "obs", "sim", "tau",
                 "workloads"},
    # The offline bottleneck analyzer is scoped *tighter* than its
    # parent layer: it harvests traces through the cluster and core and
    # may use sibling analysis modules, but must never import the
    # monitor — the streaming attributor lives in repro.monitor and
    # depends on this package's contract, not the other way around.
    "analysis.bottlenecks": {"analysis", "cluster", "core", "obs", "sim"},
    # The offline counter views are purely derivational: they consume
    # decoded wire dumps (core) and sibling analysis helpers, and — like
    # the bottleneck analyzer — must never import the monitor, whose
    # streaming counter detection depends on this package.
    "analysis.counterview": {"analysis", "core", "obs", "sim"},
    # The online monitor consumes measurements (analysis/core) over
    # cluster machinery and publishes into obs; experiments and the CLI
    # sit above it, the cluster below it (the launcher reaches it only
    # through the opaque node_setup hook).
    "monitor": {"analysis", "cluster", "core", "kernel", "obs", "sim",
                "tau"},
    # Fault injection reaches into everything it faults (cluster, the
    # kernel's NIC, the monitor's delivery path) but stays below the
    # experiments that arm plans — the chaos *runner* lives up in
    # repro.experiments so this package never imports run machinery.
    "faults": {"cluster", "core", "kernel", "monitor", "obs", "sim"},
    "experiments": {"analysis", "cluster", "core", "faults", "kernel",
                    "monitor", "obs", "oprofile", "parallel", "sim",
                    "tau", "workloads"},
    # The replication runner only moves opaque payloads between
    # processes; it must know nothing about what a replication computes
    # (obs is content-blind, so publishing timings keeps that true).
    "parallel": {"obs"},
    "lint": set(),  # the linter must not depend on what it lints
}


def _layer_key(parts: list[str]) -> str:
    """The most specific :data:`LAYER_DEPS` key for a module's parts
    (``["repro", "analysis", "bottlenecks", ...]``): the two-component
    subpackage key when one is declared, else the top-level layer."""
    if len(parts) >= 3 and ".".join(parts[1:3]) in LAYER_DEPS:
        return ".".join(parts[1:3])
    return parts[1]


def _defined_names(tree: ast.Module) -> set[str]:
    """Module-level names a ``from module import *`` could resolve."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # conditionally-defined names (TYPE_CHECKING, fallbacks)
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    names.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        names.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return names


@register
class AllDriftRule(Rule):
    rule_id = "KTAU401"
    name = "all-drift"
    description = ("__all__ names something the module does not define, "
                   "or lists a name twice")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in source.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == "__all__"
                       for t in node.targets):
                continue
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            defined = _defined_names(source.tree)
            seen: set[str] = set()
            for elt in node.value.elts:
                if not (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)):
                    continue
                name = elt.value
                if name in seen:
                    yield self.finding(
                        source, elt.lineno,
                        f"'{name}' listed twice in __all__")
                seen.add(name)
                if name not in defined and name != "__version__":
                    yield self.finding(
                        source, elt.lineno,
                        f"__all__ exports '{name}' but the module does not "
                        f"define it")


def _in_type_checking(tree: ast.Module) -> set[int]:
    """``id()`` of import nodes inside ``if TYPE_CHECKING:`` blocks."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") \
            or (isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
        if is_tc:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(sub))
    return guarded


@register
class LayerViolationRule(Rule):
    rule_id = "KTAU402"
    name = "layer-violation"
    description = ("a module imports from a repro package above its "
                   "architectural layer")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        parts = source.module.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return  # top-level shell modules and non-repro files
        key = _layer_key(parts)
        allowed = LAYER_DEPS.get(key)
        if allowed is None:
            return  # unknown package: no layering contract declared
        guarded = _in_type_checking(source.tree)
        for node in ast.walk(source.tree):
            if id(node) in guarded:
                continue
            targets: list[tuple[str, int]] = []
            if isinstance(node, ast.Import):
                targets = [(alias.name, node.lineno) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                targets = [(node.module, node.lineno)]
            for target, line in targets:
                tparts = target.split(".")
                if tparts[0] != "repro" or len(tparts) < 2:
                    continue
                tkey = _layer_key(tparts)
                # Same scoped package, or a layer on the allowed list
                # (a tightly-scoped subpackage may import its parent
                # layer only when the parent is listed explicitly).
                if tkey == key or tkey in allowed or tparts[1] in allowed:
                    continue
                if tparts[1] == parts[1] and key == parts[1]:
                    continue  # intra-layer import, no subpackage contract
                yield self.finding(
                    source, line,
                    f"layer violation: repro.{key} must not import "
                    f"'{target}' (allowed: "
                    f"{', '.join(sorted(allowed)) or 'stdlib only'})")
