"""ktaulint command line: ``python -m repro.lint [paths] --format=...``.

Exit codes are stable so CI and scripts can branch on severity:

* ``0`` — clean (or INFO-level findings only);
* ``1`` — at least one ERROR finding;
* ``3`` — WARNING findings but no errors;
* ``2`` — usage error (argparse).

``--format=json`` emits a machine-readable report (used by the test
suite's exact-location assertions); ``--format=sarif`` emits SARIF 2.1.0
for code-scanning UIs.  ``--graph-out FILE`` additionally writes the
module dependency graph (Graphviz DOT) built by the KTAU6xx pass.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.lint.engine import LintEngine, all_rules, known_rule_ids
from repro.lint.findings import Finding, Severity

#: exit code when WARNING-level findings exist but no errors
EXIT_WARNINGS = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("ktaulint: static analysis for instrumentation "
                     "balance, determinism, registry consistency, API "
                     "hygiene, shard sharing, import structure, and "
                     "IRQ-context safety"))
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule IDs to report "
                             "(e.g. KTAU101,KTAU201)")
    parser.add_argument("--graph-out", metavar="FILE",
                        help="also write the module dependency graph "
                             "as Graphviz DOT to FILE ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def _render_text(findings: list[Finding]) -> str:
    lines = [f.format() for f in findings]
    worst = [f for f in findings if f.severity >= Severity.WARNING]
    lines.append(f"ktaulint: {len(findings)} finding(s), "
                 f"{len(worst)} at warning or above")
    return "\n".join(lines)


def _render_json(findings: list[Finding]) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }, indent=2)


_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning",
                Severity.INFO: "note"}


def _rule_descriptors() -> list[dict]:
    """One SARIF reportingDescriptor per emittable rule ID."""
    descriptors: dict[str, dict] = {
        "KTAU000": {"id": "KTAU000", "name": "parse-error",
                    "shortDescription": {"text": "target file failed to "
                                                 "parse"}},
    }
    for rule in all_rules():
        for rule_id in (rule.emits or (rule.rule_id,)):
            descriptors.setdefault(rule_id, {
                "id": rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
            })
    return [descriptors[k] for k in sorted(descriptors)]


def _render_sarif(findings: list[Finding]) -> str:
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule_id,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": Path(f.path).as_posix(),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": f.line},
                },
            }],
        })
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "ktaulint",
                "informationUri": "https://www.cs.uoregon.edu/research/tau/",
                "rules": _rule_descriptors(),
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)


def _render_rules() -> str:
    lines = []
    for rule in sorted(all_rules(), key=lambda r: r.rule_id):
        lines.append(f"{rule.rule_id}  {rule.name:<24} {rule.description}")
    return "\n".join(lines)


def _write_graph(paths: list[str], out: str) -> None:
    from repro.lint.engine import ParseError
    from repro.lint.imports import build_import_graph, to_dot
    sources = []
    for path in LintEngine.discover(paths):
        try:
            sources.append(LintEngine.load(path))
        except ParseError:
            continue
    dot = to_dot(build_import_graph(sources))
    if out == "-":
        print(dot, end="")
    else:
        Path(out).write_text(dot, encoding="utf-8")


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such file or directory: {', '.join(missing)}")
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = sorted(set(select) - known_rule_ids())
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(see --list-rules)")
    engine = LintEngine(select=select)
    findings = engine.run(args.paths)
    if args.format == "json":
        print(_render_json(findings))
    elif args.format == "sarif":
        print(_render_sarif(findings))
    else:
        print(_render_text(findings))
    if args.graph_out:
        _write_graph(args.paths, args.graph_out)
    if any(f.severity >= Severity.ERROR for f in findings):
        return 1
    if any(f.severity >= Severity.WARNING for f in findings):
        return EXIT_WARNINGS
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
