"""ktaulint command line: ``python -m repro.lint [paths] --format=...``.

Exit codes: 0 when nothing at WARNING or above is found, 1 when findings
remain, 2 for usage errors.  ``--format=json`` emits a machine-readable
report (used by the test suite's exact-location assertions).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.lint.engine import LintEngine, all_rules, known_rule_ids
from repro.lint.findings import Finding, Severity


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("ktaulint: static analysis for instrumentation "
                     "balance, determinism, registry consistency, and "
                     "API hygiene"))
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule IDs to report "
                             "(e.g. KTAU101,KTAU201)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def _render_text(findings: list[Finding]) -> str:
    lines = [f.format() for f in findings]
    worst = [f for f in findings if f.severity >= Severity.WARNING]
    lines.append(f"ktaulint: {len(findings)} finding(s), "
                 f"{len(worst)} at warning or above")
    return "\n".join(lines)


def _render_json(findings: list[Finding]) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }, indent=2)


def _render_rules() -> str:
    lines = []
    for rule in sorted(all_rules(), key=lambda r: r.rule_id):
        lines.append(f"{rule.rule_id}  {rule.name:<24} {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_rules())
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such file or directory: {', '.join(missing)}")
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        unknown = sorted(set(select) - known_rule_ids())
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(see --list-rules)")
    engine = LintEngine(select=select)
    findings = engine.run(args.paths)
    if args.format == "json":
        print(_render_json(findings))
    else:
        print(_render_text(findings))
    gating = [f for f in findings if f.severity >= Severity.WARNING]
    return 1 if gating else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
