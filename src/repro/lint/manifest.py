"""The shard-sharing allowlist: every sanctioned piece of shared state.

The KTAU5xx rules (:mod:`repro.lint.sharing`) treat module-level mutable
state in the simulation substrate as illegal by default: ROADMAP item 1
(conservative parallel DES over node groups) requires that all mutable
simulation state be reachable only through a per-node root object, so
any process-wide mutable binding is a latent cross-shard channel.

The exceptions live here, in one reviewable table.  Each entry names a
module-level binding (``"dotted.module.NAME"``) and classifies it:

``singleton``
    Process-wide by design and safe under sharding — either never fed
    back into simulation (observability), or immutable-by-convention
    declaration tables built at import time and only read afterwards.
``shard-local``
    Mutable state that *looks* module-level but is re-bound per shard
    before use (none today; the classification exists so a future
    parallel runner can document per-worker state).
``message-carried``
    State handed between shards only inside explicit exchange-point
    messages (none today; see ``EXCHANGE_POINTS`` in
    :mod:`repro.cluster.shardsan` for the dynamic counterpart).

The table is *audited*, not trusted: KTAU504 flags entries whose binding
no longer exists, whose classification is unknown, or whose reason is
empty — so the manifest cannot silently rot into a blanket waiver.  The
sharing rules read this table statically (from the parsed AST, not by
import), which keeps fixture trees self-contained in tests.
"""

from __future__ import annotations

#: classification -> human meaning; KTAU504 rejects anything else
ALLOWED_CLASSIFICATIONS: tuple[str, ...] = (
    "singleton", "shard-local", "message-carried")

#: "dotted.module.NAME" -> (classification, reason)
SHARD_ALLOWLIST: dict[str, tuple[str, str]] = {
    "repro.obs.metrics.REGISTRY": (
        "singleton",
        "harness-side metrics registry; zero-feedback by design (values "
        "are observed at flush points, never read back by simulation)"),
    "repro.obs.tracer.TRACER": (
        "singleton",
        "harness-side span tracer; append-only within one run and never "
        "consulted by simulated code"),
    "repro.obs.runtime.metrics_on": (
        "singleton",
        "observability on/off flag; set once at harness startup, read-"
        "only during runs, cannot alter event order"),
    "repro.obs.runtime.tracing_on": (
        "singleton",
        "observability on/off flag; set once at harness startup, read-"
        "only during runs, cannot alter event order"),
    "repro.obs.runtime.progress_on": (
        "singleton",
        "progress-line flag; set once at harness startup and only gates "
        "stderr output"),
    "repro.core.points.POINT_GROUPS": (
        "singleton",
        "instrumentation-point declaration table; built at import time "
        "and read-only afterwards (KTAU3xx audits its contents)"),
    "repro.core.counters.PATH_RATES": (
        "singleton",
        "per-path PMC rate declaration table; built at import time and "
        "read-only afterwards (rates_for_path only reads it)"),
}
