"""The ktaulint engine: source loading, rule registry, suppression.

The engine parses every target file once into an :mod:`ast` tree wrapped
in a :class:`SourceFile` (which also pre-computes the module's dotted name
and its suppression comments), then dispatches two kinds of rules:

* :class:`Rule` — per-file checks (balance, determinism, API hygiene);
* :class:`ProjectRule` — whole-tree checks that need every file at once
  (registry consistency: declarations in one module, firings in others).

Suppression
-----------
A finding is dropped when its line carries a suppression comment::

    kernel.ktau.exit(data, point)  # ktaulint: disable=KTAU102

``disable=RULE1,RULE2`` silences the named rules on that line; a bare
``# ktaulint: disable`` silences every rule on the line; and
``# ktaulint: disable-file=RULE`` anywhere in a file silences the rule
for the whole file.  A suppression on the *last* line of a multi-line
simple statement (the closing paren of a wrapped call, where formatters
put trailing comments) covers the whole statement; comments on interior
continuation lines stay line-scoped, so one waiver inside a long literal
cannot silently blanket its siblings.  Suppressions are deliberate,
visible-in-diff escape hatches for the rare instrumentation idiom the
analysis cannot prove (e.g. KTAU's split-phase scheduler spans).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.findings import Finding, Severity

#: Matches one suppression comment; group 1 is "-file" or "", group 2 the
#: optional comma-separated rule list.
_SUPPRESS_RE = re.compile(
    r"#\s*ktaulint:\s*disable(-file)?(?:=([A-Za-z0-9_,\s]+))?")

#: Sentinel rule-set meaning "every rule".
_ALL_RULES = frozenset({"*"})


def _module_name(path: Path) -> str:
    """Dotted module name for ``path``.

    The name is derived from the last ``repro`` component of the path so
    that files under ``src/repro/...`` resolve to ``repro.x.y`` and the
    scope predicates in rules apply.  Files outside any ``repro`` package
    (e.g. test fixtures) get their bare stem, which no scope predicate
    matches — the engine then treats them as in scope for *every* rule,
    so fixtures exercise all rule families without faking a package.
    """
    parts = list(path.parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = list(parts[idx:])
        mod_parts[-1] = mod_parts[-1][:-3]  # strip .py
        if mod_parts[-1] == "__init__":
            mod_parts.pop()
        return ".".join(mod_parts)
    return path.stem


class SourceFile:
    """One parsed target file plus its suppression table."""

    def __init__(self, path: Path, text: str, tree: ast.Module):
        self.path = path
        self.text = text
        self.tree = tree
        self.module = _module_name(path)
        #: line -> set of suppressed rule IDs ({"*"} = all)
        self.line_suppressions: dict[int, set[str]] = {}
        #: rules suppressed for the whole file
        self.file_suppressions: set[str] = set()
        self._scan_suppressions()
        self._extend_statement_spans()

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if m is None:
                continue
            rules = (set(r.strip() for r in m.group(2).split(",") if r.strip())
                     if m.group(2) else set(_ALL_RULES))
            if m.group(1):  # disable-file
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    #: compound statements own their body lines; only *simple* statements
    #: get whole-span suppression from a trailing comment
    _COMPOUND = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.For, ast.AsyncFor, ast.While, ast.If, ast.With,
                 ast.AsyncWith, ast.Try, ast.Match)

    def _extend_statement_spans(self) -> None:
        """A suppression on the last line of a multi-line simple statement
        (the closing paren of a wrapped call) covers the whole statement.

        Only the *last* line extends: honouring interior continuation
        lines would let one per-entry waiver inside a long table literal
        (e.g. the KTAU303 waivers in core/points.py) silently blanket
        every other entry of the same statement.
        """
        if not self.line_suppressions:
            return
        for node in ast.walk(self.tree):
            if (not isinstance(node, ast.stmt)
                    or isinstance(node, self._COMPOUND)):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None or end <= node.lineno:
                continue
            rules = self.line_suppressions.get(end)
            if not rules:
                continue
            for lineno in range(node.lineno, end):
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        if ("*" in self.file_suppressions
                or finding.rule_id in self.file_suppressions):
            return True
        rules = self.line_suppressions.get(finding.line)
        if rules is None:
            return False
        return "*" in rules or finding.rule_id in rules


class Rule:
    """A per-file check.

    Subclasses set ``rule_id``/``name``/``severity``/``description`` and
    implement :meth:`check`.  ``scope`` limits the rule to modules whose
    dotted name starts with one of the given prefixes; files that resolve
    to no ``repro.*`` module (fixtures, scratch files) are always in
    scope.
    """

    rule_id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: module-name prefixes the rule applies to; empty = everywhere
    scope: tuple[str, ...] = ()
    #: every rule ID this rule can emit; empty means just ``rule_id``
    #: (rule families like registry consistency emit several)
    emits: tuple[str, ...] = ()

    def applies(self, source: SourceFile) -> bool:
        if not self.scope or not source.module.startswith("repro"):
            return True
        return any(source.module == p or source.module.startswith(p + ".")
                   for p in self.scope)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    def finding(self, source: SourceFile, line: int, message: str,
                severity: Optional[Severity] = None) -> Finding:
        return Finding(self.rule_id, severity or self.severity,
                       str(source.path), line, message)


class ProjectRule(Rule):
    """A whole-tree check; sees every parsed file at once."""

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Finding]:
        raise NotImplementedError


#: All registered rule classes, in registration order.
_RULE_CLASSES: list[type[Rule]] = []


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    if any(existing.rule_id == cls.rule_id for existing in _RULE_CLASSES):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    _load_builtin_rules()
    return [cls() for cls in _RULE_CLASSES]


def known_rule_ids() -> frozenset[str]:
    """Every rule ID a lint run can emit (including KTAU000 parse errors)."""
    ids = {"KTAU000"}
    for rule in all_rules():
        ids.update(rule.emits or (rule.rule_id,))
    return frozenset(ids)


def _load_builtin_rules() -> None:
    """Import the rule modules (registration happens at import time)."""
    from repro.lint import (api, balance, contexts, determinism,  # noqa: F401
                            imports, registry, sharing)


class ParseError(Exception):
    """A target file failed to parse; carries a pseudo-finding."""

    def __init__(self, finding: Finding):
        super().__init__(finding.message)
        self.finding = finding


class LintEngine:
    """Runs a rule set over a set of paths and collects findings."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 select: Optional[Iterable[str]] = None):
        self.rules = list(rules) if rules is not None else all_rules()
        #: when set, only findings with these rule IDs are reported (a
        #: rule family like registry consistency emits several IDs from
        #: one rule, so selection filters findings, not rule instances)
        self.selected: Optional[frozenset[str]] = (
            frozenset(select) if select is not None else None)

    # -- file discovery --------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[str | Path]) -> list[Path]:
        """All ``*.py`` files under ``paths`` (files pass through)."""
        out: list[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                out.extend(f for f in sorted(p.rglob("*.py"))
                           if "__pycache__" not in f.parts)
            else:
                out.append(p)
        return out

    @staticmethod
    def load(path: Path) -> SourceFile:
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise ParseError(Finding(
                "KTAU000", Severity.ERROR, str(path), exc.lineno or 1,
                f"syntax error: {exc.msg}")) from exc
        return SourceFile(path, text, tree)

    # -- the run ---------------------------------------------------------
    def run(self, paths: Iterable[str | Path]) -> list[Finding]:
        sources: list[SourceFile] = []
        findings: list[Finding] = []
        for path in self.discover(paths):
            try:
                sources.append(self.load(path))
            except ParseError as exc:
                findings.append(exc.finding)
        by_path = {str(s.path): s for s in sources}
        for rule in self.rules:
            for source in sources:
                if not isinstance(rule, ProjectRule) and rule.applies(source):
                    findings.extend(rule.check(source))
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(sources))
        kept = []
        for f in findings:
            if self.selected is not None and f.rule_id not in self.selected:
                continue
            source = by_path.get(f.path)
            if source is not None and source.is_suppressed(f):
                continue
            kept.append(f)
        kept.sort(key=Finding.sort_key)
        return kept
