"""KTAU6xx: import/ownership graph checks.

KTAU402 polices *direct* imports one file at a time.  These rules build
the full module dependency graph and enforce properties only the graph
can see:

* **KTAU601** — import cycle.  A strongly-connected component in the
  run-time import graph means import order is load-bearing: the module
  that happens to be imported first sees a half-initialised partner.
  (``if TYPE_CHECKING:`` imports never execute and are exempt, which is
  exactly how a cycle should be broken.)
* **KTAU602** — transitive layer violation.  A module may satisfy
  KTAU402 on every direct edge yet still reach a forbidden layer through
  an intermediary; the allowed set for transitive reachability is the
  closure of :data:`repro.lint.api.LAYER_DEPS`.  The finding carries the
  shortest offending chain as evidence.
* **KTAU603** — shard-boundary breach.  ROADMAP item 1 requires all
  mutable simulation state (engine, kernels, nodes, measurement) to be
  reachable only through a per-node root object built at cluster
  construction time.  A *module-level* instantiation of a shard-state
  class creates simulation state at import time, owned by no node —
  unshardable by construction.

The graph itself is exported for humans: :func:`build_import_graph`
feeds ``repro lint --graph-out`` / ``make lint-graph`` (Graphviz DOT,
one cluster per architectural layer).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.lint.api import LAYER_DEPS, _in_type_checking
from repro.lint.engine import ProjectRule, SourceFile, register
from repro.lint.findings import Finding, Severity

#: class names whose instances are per-shard simulation state; resolved
#: against classes actually defined under the shard substrate packages
_SHARD_STATE_NAMES = {
    "Engine", "Kernel", "Scheduler", "Scheduler24", "Task", "Node",
    "Cluster", "Ktau", "Nic", "RngHub", "IrqController", "ClusterNetwork",
}

#: packages whose class definitions count as shard state
_SHARD_STATE_PREFIXES = ("repro.sim", "repro.kernel", "repro.cluster",
                        "repro.core")


def _layer(module: str) -> Optional[str]:
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute module name for a ``from . import x``-style import."""
    parts = module.split(".")
    parts = parts[:len(parts) - level] if level <= len(parts) else []
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def _deferred_nodes(tree: ast.Module) -> set[int]:
    """``id()`` of import nodes inside function bodies.

    A function-scoped import executes when the function is *called*, not
    when the module loads — the sanctioned way to break an import cycle
    — so cycle detection must not count it as an import-time edge.  It
    still matters for layering and the dependency graph.
    """
    deferred: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    deferred.add(id(sub))
    return deferred


def _import_edges(source: SourceFile, known: frozenset[str]
                  ) -> list[tuple[str, int, bool]]:
    """(imported repro module, line, deferred) for every run-time import."""
    edges: list[tuple[str, int, bool]] = []
    guarded = _in_type_checking(source.tree)
    deferred = _deferred_nodes(source.tree)
    for node in ast.walk(source.tree):
        if id(node) in guarded:
            continue
        late = id(node) in deferred
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    edges.append((alias.name, node.lineno, late))
        elif isinstance(node, ast.ImportFrom):
            base = (node.module or "") if node.level == 0 else \
                _resolve_relative(source.module, node.level, node.module)
            if base.split(".")[0] != "repro":
                continue
            for alias in node.names:
                # ``from repro.a import b`` may name module repro.a.b or
                # a symbol in repro.a; prefer the module when it exists.
                sub = f"{base}.{alias.name}"
                edges.append((sub if sub in known else base,
                              node.lineno, late))
    return edges


def build_import_graph(sources: Sequence[SourceFile]
                       ) -> dict[str, dict[str, tuple[int, bool]]]:
    """module -> {imported module -> (first import line, deferred)}.

    Only run-time imports of ``repro.*`` modules are edges; targets are
    normalised to module granularity against the linted set.  An edge is
    ``deferred`` when its only imports are function-scoped (executing at
    call time, not import time).
    """
    known = frozenset(s.module for s in sources)
    graph: dict[str, dict[str, tuple[int, bool]]] = {}
    for src in sources:
        out = graph.setdefault(src.module, {})
        for target, line, late in _import_edges(src, known):
            if target == src.module:
                continue
            prev = out.get(target)
            if prev is None or (prev[1] and not late):
                out[target] = (line, late)
    return graph


def _import_time_graph(graph: dict[str, dict[str, tuple[int, bool]]]
                       ) -> dict[str, dict[str, int]]:
    """The subgraph of edges that execute at module-load time."""
    return {mod: {t: line for t, (line, late) in out.items() if not late}
            for mod, out in graph.items()}


def to_dot(graph: dict[str, dict[str, int]]) -> str:
    """The import graph as Graphviz DOT, clustered by layer."""
    lines = ["digraph repro_imports {",
             "  rankdir=LR;",
             "  node [shape=box, fontsize=10];"]
    by_layer: dict[str, list[str]] = {}
    modules = sorted(set(graph)
                     | {t for out in graph.values() for t in out})
    for mod in modules:
        by_layer.setdefault(_layer(mod) or "top", []).append(mod)
    for layer in sorted(by_layer):
        lines.append(f'  subgraph "cluster_{layer}" {{')
        lines.append(f'    label="{layer}";')
        for mod in by_layer[layer]:
            lines.append(f'    "{mod}";')
        lines.append("  }")
    for mod in sorted(graph):
        for target in sorted(graph[mod]):
            lines.append(f'  "{mod}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def _tarjan_sccs(graph: dict[str, dict[str, int]]) -> list[list[str]]:
    """Strongly-connected components (iterative Tarjan, deterministic)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)

    for mod in sorted(graph):
        if mod not in index:
            strongconnect(mod)
    return sccs


def _layer_closure() -> dict[str, set[str]]:
    """layer -> every layer transitively reachable through LAYER_DEPS."""
    closure = {layer: set(deps) for layer, deps in LAYER_DEPS.items()}
    changed = True
    while changed:
        changed = False
        for layer, reach in closure.items():
            extra = set()
            for dep in reach:
                extra |= closure.get(dep, set())
            if not extra <= reach:
                reach |= extra
                changed = True
    return closure


@register
class ImportGraphRule(ProjectRule):
    """KTAU601-603: graph properties of the run-time import relation."""

    rule_id = "KTAU601"
    name = "import-graph"
    severity = Severity.ERROR
    description = ("import cycles, transitive layer violations, and "
                   "import-time shard-state construction")
    emits = ("KTAU601", "KTAU602", "KTAU603")

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Finding]:
        by_module = {s.module: s for s in sources}
        graph = build_import_graph(sources)
        yield from self._check_cycles(_import_time_graph(graph), by_module)
        yield from self._check_transitive(graph, by_module)
        yield from self._check_shard_boundary(sources)

    def _emit(self, rule_id: str, src: SourceFile, line: int,
              message: str) -> Finding:
        return Finding(rule_id, Severity.ERROR, str(src.path), line, message)

    # -- KTAU601 ----------------------------------------------------------
    def _check_cycles(self, graph, by_module):
        for scc in _tarjan_sccs(graph):
            members = sorted(scc)
            if len(members) == 1:
                mod = members[0]
                if mod not in graph.get(mod, {}):
                    continue
                cycle = [mod, mod]
            else:
                # Walk the cycle from its first member for the message.
                cycle = [members[0]]
                in_scc = set(members)
                while True:
                    nxt = min(t for t in graph[cycle[-1]] if t in in_scc)
                    if nxt == cycle[0] or nxt in cycle:
                        cycle.append(nxt)
                        break
                    cycle.append(nxt)
            head = by_module.get(cycle[0])
            if head is None:
                continue
            line = graph[cycle[0]].get(cycle[1], 1)
            yield self._emit(
                "KTAU601", head, line,
                "import cycle: " + " -> ".join(cycle) + " (import order "
                "becomes load-bearing; break the cycle or move the "
                "import under TYPE_CHECKING)")

    # -- KTAU602 ----------------------------------------------------------
    def _check_transitive(self, graph, by_module):
        closure = _layer_closure()
        for mod in sorted(graph):
            layer = _layer(mod)
            if layer is None or layer not in LAYER_DEPS:
                continue
            allowed = closure[layer]
            # BFS with parent tracking for shortest-chain evidence.
            parents: dict[str, str] = {}
            frontier = [mod]
            seen = {mod}
            while frontier:
                nxt: list[str] = []
                for cur in frontier:
                    for target in sorted(graph.get(cur, ())):
                        if target in seen:
                            continue
                        seen.add(target)
                        parents[target] = cur
                        nxt.append(target)
                frontier = nxt
            for target in sorted(seen - {mod}):
                tlayer = _layer(target)
                if tlayer is None or tlayer == layer or tlayer in allowed:
                    continue
                chain = [target]
                while chain[-1] != mod:
                    chain.append(parents[chain[-1]])
                chain.reverse()
                if len(chain) <= 2:
                    continue  # direct edge: KTAU402's finding, not ours
                src = by_module[mod]
                line = graph[mod].get(chain[1], (1, False))[0]
                yield self._emit(
                    "KTAU602", src, line,
                    f"transitive layer violation: repro.{layer} reaches "
                    f"'{target}' (layer '{tlayer}') via "
                    + " -> ".join(chain))

    # -- KTAU603 ----------------------------------------------------------
    def _check_shard_boundary(self, sources):
        # Classes defined under the shard substrate with shard-state names.
        shard_classes: set[tuple[str, str]] = set()
        for src in sources:
            if not (src.module.startswith(_SHARD_STATE_PREFIXES)
                    or not src.module.startswith("repro")):
                continue
            for node in ast.walk(src.tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name in _SHARD_STATE_NAMES):
                    shard_classes.add((src.module, node.name))
        if not shard_classes:
            return
        known = frozenset(s.module for s in sources)
        all_imports = {s.module: self._symbol_imports(s, known)
                       for s in sources}
        # Propagate through re-exports: ``from repro.kernel.kernel import
        # Kernel`` in repro/kernel/__init__.py makes (repro.kernel,
        # Kernel) an alias of the shard class, so call sites that import
        # from the package still resolve.
        changed = True
        while changed:
            changed = False
            for src in sources:
                for local, (mod, sym) in all_imports[src.module].items():
                    if (sym is not None and (mod, sym) in shard_classes
                            and (src.module, local) not in shard_classes):
                        shard_classes.add((src.module, local))
                        changed = True
        for src in sources:
            imports = all_imports[src.module]
            for stmt in src.tree.body:
                value = None
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                resolved = self._resolve_class(src, imports, value.func,
                                               shard_classes)
                if resolved is None:
                    continue
                mod, cls = resolved
                yield self._emit(
                    "KTAU603", src, stmt.lineno,
                    f"shard boundary: module-level instantiation of "
                    f"{cls} (from {mod}) creates simulation state owned "
                    f"by no node; construct it inside the cluster/node "
                    f"build path instead")

    @staticmethod
    def _symbol_imports(source: SourceFile, known: frozenset[str]
                        ) -> dict[str, tuple[str, Optional[str]]]:
        """local name -> (module, symbol or None) for run-time imports."""
        out: dict[str, tuple[str, Optional[str]]] = {}
        guarded = _in_type_checking(source.tree)
        for node in ast.walk(source.tree):
            if id(node) in guarded:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out[alias.asname or alias.name.split(".")[0]] = (
                        alias.name, None)
            elif isinstance(node, ast.ImportFrom):
                base = (node.module or "") if node.level == 0 else \
                    _resolve_relative(source.module, node.level, node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    sub = f"{base}.{alias.name}"
                    if sub in known:
                        out[alias.asname or alias.name] = (sub, None)
                    else:
                        out[alias.asname or alias.name] = (base, alias.name)
        return out

    def _resolve_class(self, source, imports, func, shard_classes
                       ) -> Optional[tuple[str, str]]:
        if isinstance(func, ast.Name):
            target = imports.get(func.id)
            if target is not None and target[1] is not None \
                    and (target[0], target[1]) in shard_classes:
                return target
            if (source.module, func.id) in shard_classes:
                return source.module, func.id
        elif isinstance(func, ast.Attribute) and isinstance(func.value,
                                                            ast.Name):
            target = imports.get(func.value.id)
            if target is not None and target[1] is None \
                    and (target[0], func.attr) in shard_classes:
                return target[0], func.attr
        return None
