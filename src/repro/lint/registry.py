"""Registry consistency: declared points vs. fired points.

The simulated kernel refuses to fire an instrumentation point that is not
declared in ``repro.core.points.POINT_GROUPS`` — but that check happens
at run time, on the path that fires the point.  This project-wide rule
moves it to lint time by statically cross-referencing the declaration
table with every firing site in the tree:

KTAU301
    Duplicate point declaration: the same name appears twice in the
    ``POINT_GROUPS`` dict literal.  Python silently keeps the last
    binding, so the first declaration's group is dead — the static
    analog of an event-ID collision.
KTAU302
    Unknown point: a literal name fired through ``.point(...)``,
    ``.atomic_point(...)``, ``group_of(...)`` or named in a
    ``KSpan(...)`` tree that is not declared.  This would raise
    ``KeyError`` the first time the path executes.
KTAU303
    Unwired point: declared in ``POINT_GROUPS`` but never referenced
    anywhere else in the tree — dead instrumentation that will never
    produce data (warning: points kept for paper fidelity carry explicit
    suppressions at the declaration).
KTAU304
    Unknown group: a ``POINT_GROUPS`` value that is not a member of the
    ``Group`` enum declared in the same module.

When no ``POINT_GROUPS`` declaration exists under the linted paths the
rule is silent (there is no table to check against).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.lint.engine import ProjectRule, SourceFile, register
from repro.lint.findings import Finding, Severity

#: Call shapes whose first literal string argument names a point.
_POINT_CALL_ATTRS = ("point", "atomic_point")
_POINT_CALL_NAMES = ("group_of", "KSpan")


def _find_point_table(source: SourceFile) -> Optional[ast.Dict]:
    """The ``POINT_GROUPS = {...}`` dict literal in a module, if any."""
    for node in source.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "POINT_GROUPS"
                    and isinstance(value, ast.Dict)):
                return value
    return None


def _group_members(source: SourceFile) -> Optional[set[str]]:
    """Member names of the ``Group`` enum class in a module, if any."""
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Group":
            members: set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            members.add(target.id)
            return members
    return None


def _literal_point_refs(source: SourceFile,
                        exclude: Optional[ast.Dict]) -> list[tuple[str, int, bool]]:
    """``(name, line, is_firing)`` references in a file.

    ``is_firing`` is True for literals passed to a point-firing call
    (those must be declared); False for any other string literal (those
    merely count as wiring — analysis code naming events, tuple tables).
    Literals inside the declaration dict itself are excluded.
    """
    firing_lits: set[int] = set()  # id() of Constant nodes seen in calls
    refs: list[tuple[str, int, bool]] = []
    excluded: set[int] = set()
    if exclude is not None:
        for sub in ast.walk(exclude):
            excluded.add(id(sub))
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        named = (isinstance(func, ast.Attribute)
                 and func.attr in _POINT_CALL_ATTRS) or \
                (isinstance(func, ast.Name) and func.id in _POINT_CALL_NAMES)
        if not named or not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            firing_lits.add(id(first))
            refs.append((first.value, first.lineno, True))
    for node in ast.walk(source.tree):
        if (isinstance(node, ast.Constant) and isinstance(node.value, str)
                and id(node) not in firing_lits
                and id(node) not in excluded):
            refs.append((node.value, node.lineno, False))
    return refs


@register
class RegistryConsistencyRule(ProjectRule):
    rule_id = "KTAU301"
    name = "registry-consistency"
    severity = Severity.ERROR
    description = ("registry family: duplicate declarations (KTAU301), "
                   "undeclared points fired (KTAU302), declared points "
                   "never wired (KTAU303), unknown groups (KTAU304)")
    emits = ("KTAU301", "KTAU302", "KTAU303", "KTAU304")

    def check_project(self, sources: Sequence[SourceFile]) -> Iterable[Finding]:
        # Locate the declaration table (prefer repro.core.points).
        table_source: Optional[SourceFile] = None
        table: Optional[ast.Dict] = None
        for source in sources:
            found = _find_point_table(source)
            if found is not None and (table_source is None
                                      or source.module == "repro.core.points"):
                table_source, table = source, found
        if table_source is None or table is None:
            return

        declared: dict[str, int] = {}
        for key_node, value_node in zip(table.keys, table.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                continue
            name = key_node.value
            if name in declared:
                yield Finding(
                    "KTAU301", Severity.ERROR, str(table_source.path),
                    key_node.lineno,
                    f"duplicate declaration of point '{name}' (first at "
                    f"line {declared[name]}): event-ID collision, the "
                    f"first group binding is dead")
            else:
                declared[name] = key_node.lineno

        # Unknown groups (KTAU304) — values must be Group.<member>.
        members = _group_members(table_source)
        for value_node in table.values:
            if (isinstance(value_node, ast.Attribute)
                    and isinstance(value_node.value, ast.Name)
                    and value_node.value.id == "Group"):
                if members is not None and value_node.attr not in members:
                    yield Finding(
                        "KTAU304", Severity.ERROR, str(table_source.path),
                        value_node.lineno,
                        f"unknown group 'Group.{value_node.attr}' (not a "
                        f"member of the Group enum)")
            else:
                yield Finding(
                    "KTAU304", Severity.ERROR, str(table_source.path),
                    value_node.lineno,
                    f"point group must be a Group enum member, got "
                    f"'{ast.unparse(value_node)}'")

        # Cross-reference every other file (and the rest of the table's
        # own module) against the declarations.
        wired: set[str] = set()
        for source in sources:
            exclude = table if source is table_source else None
            for name, line, is_firing in _literal_point_refs(source, exclude):
                if name in declared:
                    wired.add(name)
                elif is_firing:
                    yield Finding(
                        "KTAU302", Severity.ERROR, str(source.path), line,
                        f"undeclared instrumentation point '{name}': firing "
                        f"it raises KeyError at run time")

        for name, line in declared.items():
            if name not in wired:
                yield Finding(
                    "KTAU303", Severity.WARNING, str(table_source.path),
                    line,
                    f"point '{name}' is declared but never wired into any "
                    f"kernel path (dead instrumentation)")
