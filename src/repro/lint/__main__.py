"""``python -m repro.lint`` entry point."""

import os
import sys

from repro.lint.cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe early;
        # swap stdout for devnull so the interpreter's shutdown flush
        # does not print a second traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 1
    raise SystemExit(code)
