"""Determinism: keep the measurement substrate bit-reproducible.

Cross-node performance comparison (and the perturbation tables) only
mean anything when two runs with the same seed produce identical event
streams — the tracing-correctness concern of Dagenais et al.  All time
must come from the simulated clock (:mod:`repro.sim.clock`) and all
randomness from seeded named streams (:mod:`repro.sim.rng`).  These
rules forbid the ways nondeterminism usually leaks into a refactor of
``repro.sim`` / ``repro.kernel`` / ``repro.core`` / ``repro.parallel``
/ ``repro.obs`` (the observability layer observes wall time but must
never let it feed back into results, so its two sanctioned reads in
``repro.obs.runtime`` carry explicit line suppressions):

KTAU201
    Wall-clock reads: ``time.time``/``monotonic``/``perf_counter`` (and
    ``_ns`` variants), ``datetime.now``/``utcnow``/``today``.
KTAU202
    Unseeded randomness: the global ``random`` module, legacy global
    ``numpy.random.*`` functions, ``default_rng()`` / ``SeedSequence()``
    called without entropy.
KTAU203
    Entropy sources: ``os.urandom``, ``uuid.uuid4``, the ``secrets``
    module.
KTAU204
    Iterating directly over a set/frozenset display or constructor call:
    set iteration order depends on hash seeding, so anything derived
    from it (output order, tie-breaking) varies across processes.  Wrap
    the set in ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.engine import Rule, SourceFile, register
from repro.lint.findings import Finding

SCOPE = ("repro.sim", "repro.kernel", "repro.core", "repro.parallel",
         "repro.obs", "repro.monitor", "repro.faults",
         # The bottleneck analyzer's reports are golden-pinned, so the
         # whole subpackage lives under the determinism contract.
         "repro.analysis.bottlenecks",
         # Counter views feed golden-pinned exports and the monitor's
         # counter-outlier detection: same contract.
         "repro.analysis.counterview")

#: (penultimate, last) dotted-name components of banned wall-clock calls.
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "clock_gettime"), ("time", "clock_gettime_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("date", "today"),
}

#: Global random-module functions that draw from the unseeded global state.
_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes",
}

_ENTROPY = {("os", "urandom"), ("uuid", "uuid4"), ("uuid", "uuid1")}


def _dotted(node: ast.expr) -> Optional[list[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``, or ``None`` for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _has_entropy_arg(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg in ("seed", "entropy") for kw in call.keywords)


class _DeterminismBase(Rule):
    scope = SCOPE

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            finding = self._check_node(source, node)
            if finding is not None:
                yield finding

    def _check_node(self, source: SourceFile,
                    node: ast.AST) -> Optional[Finding]:
        raise NotImplementedError


@register
class WallClockRule(_DeterminismBase):
    rule_id = "KTAU201"
    name = "wall-clock"
    description = ("wall-clock reads make measurement non-reproducible; "
                   "use the simulated CycleClock / engine time")

    def _check_node(self, source: SourceFile,
                    node: ast.AST) -> Optional[Finding]:
        if not isinstance(node, ast.Call):
            return None
        dotted = _dotted(node.func)
        if dotted and len(dotted) >= 2 and tuple(dotted[-2:]) in _WALL_CLOCK:
            return self.finding(
                source, node.lineno,
                f"wall-clock read '{'.'.join(dotted)}()' in deterministic "
                f"code; use the simulated clock")
        return None


@register
class UnseededRandomRule(_DeterminismBase):
    rule_id = "KTAU202"
    name = "unseeded-random"
    description = ("unseeded randomness breaks run-to-run reproducibility; "
                   "draw from a seeded RngHub stream")

    def _check_node(self, source: SourceFile,
                    node: ast.AST) -> Optional[Finding]:
        if not isinstance(node, ast.Call):
            return None
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        name = ".".join(dotted)
        # global `random` module state (random.random(), random.seed()...)
        if (len(dotted) == 2 and dotted[0] == "random"
                and dotted[1] in _RANDOM_FUNCS):
            return self.finding(
                source, node.lineno,
                f"'{name}()' draws from the unseeded global RNG; use a "
                f"seeded RngHub stream")
        # legacy numpy global state: np.random.rand / numpy.random.shuffle
        if (len(dotted) == 3 and dotted[0] in ("np", "numpy")
                and dotted[1] == "random"
                and dotted[2] not in ("Generator", "PCG64", "SeedSequence",
                                      "default_rng")):
            return self.finding(
                source, node.lineno,
                f"'{name}()' uses numpy's global RNG state; use a seeded "
                f"Generator")
        # default_rng() / SeedSequence() with no entropy seeds from the OS
        if dotted[-1] in ("default_rng", "SeedSequence") \
                and not _has_entropy_arg(node):
            return self.finding(
                source, node.lineno,
                f"'{name}()' without a seed draws OS entropy; pass explicit "
                f"entropy")
        return None


@register
class EntropySourceRule(_DeterminismBase):
    rule_id = "KTAU203"
    name = "entropy-source"
    description = "direct OS entropy (os.urandom, uuid4, secrets) is banned"

    def _check_node(self, source: SourceFile,
                    node: ast.AST) -> Optional[Finding]:
        if not isinstance(node, ast.Call):
            return None
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        if tuple(dotted[-2:]) in _ENTROPY or dotted[0] == "secrets":
            return self.finding(
                source, node.lineno,
                f"'{'.'.join(dotted)}()' reads OS entropy; deterministic "
                f"code must not")
        return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    return False


@register
class SetIterationRule(_DeterminismBase):
    rule_id = "KTAU204"
    name = "set-iteration-order"
    description = ("iteration order over a set depends on hash seeding; "
                   "sort before iterating")

    def _check_node(self, source: SourceFile,
                    node: ast.AST) -> Optional[Finding]:
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                return self.finding(
                    source, it.lineno,
                    "iterating directly over a set: order depends on hash "
                    "seeding; wrap in sorted(...)")
        return None
