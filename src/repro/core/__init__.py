"""KTAU: the kernel measurement system (the paper's primary contribution).

The architecture mirrors Figure 1 of the paper:

* **Kernel instrumentation** (:mod:`repro.core.points`,
  :mod:`repro.core.registry`) — entry/exit, atomic, and event-mapping
  instrumentation primitives compiled into the simulated kernel, grouped by
  subsystem and controllable at compile/boot/run time
  (:mod:`repro.core.config`).
* **Measurement system** (:mod:`repro.core.measurement`,
  :mod:`repro.core.tracebuf`) — per-task profile and trace structures hung
  off the simulated process control block, with inclusive/exclusive
  accounting via an activation stack and a fixed-size circular trace
  buffer.
* **/proc/ktau** (:mod:`repro.core.procfs`, :mod:`repro.core.wire`) — the
  session-less two-call (size, then read) binary interface.
* **libKtau** (:mod:`repro.core.libktau`) — the user API wrapping the proc
  protocol: kernel control, data retrieval, binary/ASCII conversion,
  formatted output.
* **Clients** (:mod:`repro.core.clients`) — KTAUD, runKtau, and
  self-profiling clients.
"""

from repro.core.config import KtauBuildConfig, KtauRuntimeControl
from repro.core.measurement import (Ktau, KtauTaskData, PerfData, AtomicData,
                                    InstrumentationImbalanceError)
from repro.core.points import Group, POINT_GROUPS
from repro.core.registry import EventRegistry, InstrumentationPoint
from repro.core.overhead import OverheadModel
from repro.core.tracebuf import TraceOverflowError
from repro.core.libktau import LibKtau, Scope

__all__ = [
    "Ktau",
    "KtauTaskData",
    "PerfData",
    "AtomicData",
    "InstrumentationImbalanceError",
    "TraceOverflowError",
    "KtauBuildConfig",
    "KtauRuntimeControl",
    "Group",
    "POINT_GROUPS",
    "EventRegistry",
    "InstrumentationPoint",
    "OverheadModel",
    "LibKtau",
    "Scope",
]
