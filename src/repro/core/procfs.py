"""The /proc/ktau interface.

KTAU exposes two entries, ``/proc/ktau/profile`` and ``/proc/ktau/trace``.
The interface is deliberately *session-less*: a profile read requires first
a call to determine the profile size and then another call to retrieve the
data into a caller-allocated buffer.  No state is saved between calls even
though the profile may grow in between — the design avoids kernel-side
resource leaks from misbehaving clients.  Consequently a read with a buffer
sized by an earlier ``size`` call can come back *truncated*, and clients
(libKtau) must detect that and retry with a larger buffer.  Tests exercise
this race explicitly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.measurement import Ktau
from repro.core import wire


class KtauProcTransientError(RuntimeError):
    """A /proc/ktau call failed transiently (an ``-EAGAIN`` analog).

    Raised only while a fault injector holds :attr:`KtauProcFS.failing`
    up; clients (KTAUD) are expected to retry with backoff under a
    :class:`~repro.core.retry.RetryPolicy` rather than crash.
    """


class KtauProcFS:
    """In-simulation stand-in for the two /proc/ktau files.

    All methods are stateless with respect to previous calls, mirroring the
    session-less kernel interface.  ``pids=None`` selects all processes
    (libKtau's ``all`` mode); a list selects specific processes (``self`` /
    ``other`` modes).
    """

    def __init__(self, ktau: Ktau):
        self._ktau = ktau
        #: fault-injection switch: while True every data call raises
        #: :class:`KtauProcTransientError`.  Flipped by scheduled engine
        #: events (:mod:`repro.faults`), never read from wall clocks, so
        #: faulted runs stay deterministic.  Always False when no fault
        #: plan is armed — the check is a single attribute test.
        self.failing = False

    def _check_transient(self) -> None:
        if self.failing:
            raise KtauProcTransientError("/proc/ktau transiently unavailable")

    # ------------------------------------------------------------------
    # /proc/ktau/profile
    # ------------------------------------------------------------------
    def profile_size(self, pids: Optional[list[int]] = None,
                     include_zombies: bool = False) -> int:
        """First call of the protocol: current packed size in bytes.

        The value is only advisory — the profile may grow before the
        subsequent read.
        """
        self._check_transient()
        snap = self._ktau.snapshot(pids, include_zombies=include_zombies)
        return len(wire.pack_profiles(snap, self._ktau.registry))

    def profile_read(self, bufsize: int, pids: Optional[list[int]] = None,
                     include_zombies: bool = False) -> tuple[bytes, int]:
        """Second call: copy up to ``bufsize`` bytes of the *current* profile.

        Returns ``(data, full_size)``; ``len(data) < full_size`` signals a
        truncated read (the profile grew since the size call) and the
        client must retry.
        """
        self._check_transient()
        snap = self._ktau.snapshot(pids, include_zombies=include_zombies)
        packed = wire.pack_profiles(snap, self._ktau.registry)
        return packed[:bufsize], len(packed)

    # ------------------------------------------------------------------
    # /proc/ktau/trace
    # ------------------------------------------------------------------
    def trace_size(self, pid: int) -> int:
        """Packed size of ``pid``'s currently buffered trace records."""
        self._check_transient()
        data = self._task_data(pid)
        if data is None or data.trace is None:
            return 0
        return len(wire.pack_trace(pid, data.trace.lost_count, data.trace.peek(),
                                   self._ktau.registry))

    def trace_read(self, pid: int, bufsize: int) -> tuple[bytes, int]:
        """Drain and return ``pid``'s trace buffer (destructive read).

        If the packed drain exceeds ``bufsize`` the *entire* drain is still
        consumed but only ``bufsize`` bytes are returned — records beyond
        the buffer are lost, as with any fixed buffer handed to the kernel.
        The full size is returned so clients can detect the loss.
        """
        self._check_transient()
        data = self._task_data(pid)
        if data is None or data.trace is None:
            return b"", 0
        records = data.trace.drain()
        packed = wire.pack_trace(pid, data.trace.lost_count, records,
                                 self._ktau.registry)
        return packed[:bufsize], len(packed)

    # ------------------------------------------------------------------
    # control ioctl (libKtau kernel-control path)
    # ------------------------------------------------------------------
    def ioctl_set_groups(self, enable: bool, groups) -> None:
        """Enable/disable instrumentation groups at runtime."""
        if enable:
            self._ktau.control.enable(*groups)
        else:
            self._ktau.control.disable(*groups)

    def ioctl_set_points(self, enable: bool, names) -> None:
        """Enable/disable individual instrumentation points (§6's dynamic
        measurement control, at point granularity)."""
        if enable:
            self._ktau.control.enable_points(*names)
        else:
            self._ktau.control.disable_points(*names)

    def ioctl_overhead(self) -> int:
        """Total measurement overhead charged so far, in cycles."""
        return self._ktau.total_overhead_cycles

    # ------------------------------------------------------------------
    def _task_data(self, pid: int):
        data = self._ktau.tasks.get(pid)
        if data is None:
            data = self._ktau.zombies.get(pid)
        return data
