"""Simulated hardware performance counters (§6 future work:
"performance counter access to KTAU").

Real KTAU would read PMCs (instructions retired, cache misses, page
faults) alongside the TSC at each entry/exit.  The simulated equivalent
maintains per-task counters advanced by the CPU executor as it charges
time, using mode-specific rates: user code retires more instructions per
cycle than kernel code, and kernel paths (pointer-chasing, device
access) miss the L2 more per kilocycle.  KTAU snapshots these counters
at event boundaries, yielding per-event inclusive counter deltas that
merge with cycle profiles.

Two refinements beyond the mode split:

* **Per-path rates** (:data:`PATH_RATES`): interrupt- and network-path
  spans advance the counters at rates characteristic of the routine —
  device access misses hard, softirq dispatch less so, and the TCP
  receive path derives its miss rate from the SMP cache-locality model
  (:func:`scale_miss_rate` applies the same ``cache_mismatch_factor``
  that dilates ``tcp_v4_rcv``'s processing time when the servicing CPU
  differs from the consumer's).
* **Executed-cycle tracking**: the counters carry their own cycle count
  (cycles the task actually executed, as opposed to TSC deltas that
  include blocked time), so IPC and miss-per-kilocycle rates have an
  honest denominator.

Counter advancement is pure integer arithmetic driven by already-charged
simulated time: it schedules no events, charges no overhead, and reads
no entropy, so enabling counters never changes simulated timing — the
time profile of a counters-on run is byte-identical to the same run with
counters off (asserted by the bench identity row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PmcRates:
    """Counter-advance rates for one execution mode or kernel path."""

    ipc: float  # instructions retired per cycle
    l2_miss_per_kcycle: float  # L2 misses per 1000 cycles


#: Default rates for a Pentium-III-era core.
USER_RATES = PmcRates(ipc=0.90, l2_miss_per_kcycle=1.2)
KERNEL_RATES = PmcRates(ipc=0.55, l2_miss_per_kcycle=3.0)

#: Per-path rate model for instrumented kernel routines.  Paths absent
#: from the table advance at :data:`KERNEL_RATES`.  Device-touching
#: interrupt paths miss hardest; softirq dispatch is in between; the
#: TCP paths start from warm-cache rates and are scaled by the SMP
#: cache-mismatch model at span-construction time (kernel/net/tcp.py).
PATH_RATES: dict[str, PmcRates] = {
    "do_IRQ": PmcRates(ipc=0.45, l2_miss_per_kcycle=4.0),
    "eth_interrupt": PmcRates(ipc=0.40, l2_miss_per_kcycle=5.0),
    "smp_apic_timer_interrupt": PmcRates(ipc=0.45, l2_miss_per_kcycle=3.5),
    "timer_interrupt": PmcRates(ipc=0.45, l2_miss_per_kcycle=3.5),
    "do_softirq": PmcRates(ipc=0.50, l2_miss_per_kcycle=3.2),
    "net_rx_action": PmcRates(ipc=0.50, l2_miss_per_kcycle=3.0),
    "run_timer_softirq": PmcRates(ipc=0.55, l2_miss_per_kcycle=2.5),
    "tcp_v4_rcv": PmcRates(ipc=0.60, l2_miss_per_kcycle=2.5),
    "tcp_sendmsg": PmcRates(ipc=0.65, l2_miss_per_kcycle=2.2),
    "ip_queue_xmit": PmcRates(ipc=0.60, l2_miss_per_kcycle=2.0),
    "dev_queue_xmit": PmcRates(ipc=0.50, l2_miss_per_kcycle=4.5),
    "do_page_fault": PmcRates(ipc=0.40, l2_miss_per_kcycle=8.0),
}


def rates_for_path(name: str) -> PmcRates:
    """The rate model for one kernel path (default :data:`KERNEL_RATES`)."""
    return PATH_RATES.get(name, KERNEL_RATES)


def scale_miss_rate(rates: PmcRates, factor: float) -> PmcRates:
    """``rates`` with the L2 miss rate scaled by ``factor``.

    The SMP cache-locality hook: when received data crosses CPUs the
    receive path pays cross-CPU cache traffic, so the same mismatch
    factor that dilates its processing time inflates its miss rate.
    """
    return PmcRates(ipc=rates.ipc,
                    l2_miss_per_kcycle=rates.l2_miss_per_kcycle * factor)


class TaskCounters:
    """Per-task simulated PMCs: cycles, instructions, L2 misses, faults."""

    __slots__ = ("cycles", "insn_retired", "l2_misses",
                 "pgf_minor", "pgf_major")

    def __init__(self) -> None:
        self.cycles = 0
        self.insn_retired = 0
        self.l2_misses = 0
        self.pgf_minor = 0
        self.pgf_major = 0

    def advance(self, cycles: int, kernel_mode: bool,
                rates: Optional[PmcRates] = None) -> None:
        """Advance by ``cycles`` of executed time.

        ``rates`` overrides the mode default — per-path rates for
        interrupt/network spans, or a per-task user-mode override (how
        the cache-thrashing interference workload is modelled).
        """
        if rates is None:
            rates = KERNEL_RATES if kernel_mode else USER_RATES
        self.cycles += cycles
        self.insn_retired += int(cycles * rates.ipc)
        self.l2_misses += int(cycles * rates.l2_miss_per_kcycle) // 1000

    def fault(self, major: bool = False) -> None:
        """Count one page fault (minor unless ``major``)."""
        if major:
            self.pgf_major += 1
        else:
            self.pgf_minor += 1

    def read(self) -> tuple[int, int, int, int, int]:
        """PMC snapshot: (cycles, instructions, L2 misses, minflt, majflt)."""
        return (self.cycles, self.insn_retired, self.l2_misses,
                self.pgf_minor, self.pgf_major)
