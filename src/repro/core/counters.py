"""Simulated hardware performance counters (§6 future work:
"performance counter access to KTAU").

Real KTAU would read PMCs (instructions retired, cache misses) alongside
the TSC at each entry/exit.  The simulated equivalent maintains per-task
counters advanced by the CPU executor as it charges time, using
mode-specific rates: user code retires more instructions per cycle than
kernel code, and kernel paths (pointer-chasing, device access) miss the
L2 more per kilocycle.  KTAU snapshots these counters at event
boundaries, yielding per-event inclusive instruction/miss counts that
merge with cycle profiles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PmcRates:
    """Counter-advance rates for one execution mode."""

    ipc: float  # instructions retired per cycle
    l2_miss_per_kcycle: float  # L2 misses per 1000 cycles


#: Default rates for a Pentium-III-era core.
USER_RATES = PmcRates(ipc=0.90, l2_miss_per_kcycle=1.2)
KERNEL_RATES = PmcRates(ipc=0.55, l2_miss_per_kcycle=3.0)


class TaskCounters:
    """Per-task retired-instruction and L2-miss counters."""

    __slots__ = ("insn_retired", "l2_misses")

    def __init__(self) -> None:
        self.insn_retired = 0
        self.l2_misses = 0

    def advance(self, cycles: int, kernel_mode: bool) -> None:
        rates = KERNEL_RATES if kernel_mode else USER_RATES
        self.insn_retired += int(cycles * rates.ipc)
        self.l2_misses += int(cycles * rates.l2_miss_per_kcycle) // 1000

    def read(self) -> tuple[int, int]:
        return (self.insn_retired, self.l2_misses)
