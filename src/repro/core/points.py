"""Instrumentation-point groups.

KTAU groups instrumentation points by the kernel subsystem they belong to
(scheduling, networking, ...) or the context they arise in (system calls,
interrupts, bottom-half handling).  Compile-time configuration selects
which groups are built in; boot-time/runtime control can disable built-in
groups (the ``Ktau Off`` configuration of the perturbation study).

The table below names every instrumentation point the simulated kernel
fires and assigns it to a group.  The names match real Linux kernel symbols
where one exists so that the analysis layer reads like the paper's figures
(``schedule``, ``do_IRQ``, ``do_softirq``, ``tcp_sendmsg`` ...).
"""

from __future__ import annotations

import enum


class Group(str, enum.Enum):
    """KTAU instrumentation groups (compile/boot/runtime selectable)."""

    SCHED = "sched"
    SYSCALL = "syscall"
    IRQ = "irq"
    BH = "bh"  # bottom halves / softirqs
    NET = "net"  # network (TCP/socket) subsystem
    EXCEPTION = "exception"
    SIGNAL = "signal"
    IO = "io"  # block-I/O subsystem (the ZeptoOS I/O-node work of §6)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Every instrumentation point in the simulated kernel, mapped to its group.
#: The kernel refuses to fire a point that is not declared here, which
#: catches typos in kernel code at test time.
#:
#: A few declarations carry ``ktaulint: disable=KTAU303`` (the
#: unwired-point check): they reproduce entries of the paper's
#: instrumentation table whose kernel path the simulation does not model
#: (e.g. ``sys_poll``; pipes are created out-of-band rather than through
#: ``sys_pipe``).  They are kept so the declared table stays the paper's
#: table; the suppression records that the dead wiring is intentional.
POINT_GROUPS: dict[str, Group] = {
    # -- scheduling ----------------------------------------------------
    "schedule": Group.SCHED,  # involuntary (preemption / timeslice expiry)
    "schedule_vol": Group.SCHED,  # voluntary (blocked waiting for an event)
    "__wake_up": Group.SCHED,  # ktaulint: disable=KTAU303
    "load_balance": Group.SCHED,  # ktaulint: disable=KTAU303
    # -- system calls --------------------------------------------------
    "sys_read": Group.SYSCALL,
    "sys_write": Group.SYSCALL,
    "sys_readv": Group.SYSCALL,
    "sys_writev": Group.SYSCALL,
    "sys_poll": Group.SYSCALL,  # ktaulint: disable=KTAU303
    "sys_nanosleep": Group.SYSCALL,
    "sys_gettimeofday": Group.SYSCALL,
    "sys_getppid": Group.SYSCALL,
    "sys_sched_setaffinity": Group.SYSCALL,
    "sys_socketcall": Group.SYSCALL,  # ktaulint: disable=KTAU303
    "sys_pipe": Group.SYSCALL,  # ktaulint: disable=KTAU303
    "sys_exit": Group.SYSCALL,
    "sys_pwrite64": Group.SYSCALL,
    "sys_fsync": Group.SYSCALL,
    # -- interrupts ----------------------------------------------------
    "do_IRQ": Group.IRQ,
    "timer_interrupt": Group.IRQ,  # ktaulint: disable=KTAU303
    "eth_interrupt": Group.IRQ,
    "smp_apic_timer_interrupt": Group.IRQ,
    # -- bottom halves ---------------------------------------------------
    "do_softirq": Group.BH,
    "net_rx_action": Group.BH,
    "net_tx_action": Group.BH,  # ktaulint: disable=KTAU303
    "run_timer_softirq": Group.BH,
    # -- network subsystem ----------------------------------------------
    "sock_sendmsg": Group.NET,
    "tcp_sendmsg": Group.NET,
    "ip_queue_xmit": Group.NET,
    "dev_queue_xmit": Group.NET,
    "sock_recvmsg": Group.NET,
    "tcp_recvmsg": Group.NET,
    "tcp_v4_rcv": Group.NET,
    "tcp_rcv_established": Group.NET,
    "tcp_data_queue": Group.NET,
    # atomic events in the network subsystem (packet sizes)
    "net.pkt_tx_bytes": Group.NET,
    "net.pkt_rx_bytes": Group.NET,
    # -- block I/O ---------------------------------------------------------
    "generic_make_request": Group.IO,
    "__make_request": Group.IO,
    "end_request": Group.IO,
    "io.bio_bytes": Group.IO,  # atomic: submitted request sizes
    "ide_intr": Group.IRQ,  # disk completion interrupt handler
    # -- exceptions ------------------------------------------------------
    "do_page_fault": Group.EXCEPTION,
    # -- signals ---------------------------------------------------------
    "do_signal": Group.SIGNAL,
    "signal_deliver": Group.SIGNAL,
}

#: Points the TCP analysis (Figures 9 and 10) treats as "kernel TCP calls".
TCP_CALL_POINTS: tuple[str, ...] = (
    "tcp_sendmsg",
    "tcp_recvmsg",
    "tcp_v4_rcv",
    "tcp_rcv_established",
    "tcp_data_queue",
)

#: Scheduling points, used by the voluntary/involuntary analyses.
SCHED_VOLUNTARY_POINT = "schedule_vol"
SCHED_INVOLUNTARY_POINT = "schedule"


def group_of(name: str) -> Group:
    """Group of a declared instrumentation point.

    Raises ``KeyError`` for undeclared names — kernel code must only fire
    declared points.
    """
    return POINT_GROUPS[name]


ALL_GROUPS: frozenset[Group] = frozenset(Group)
