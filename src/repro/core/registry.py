"""Event-mapping: binding instrumentation points to numeric identities.

The paper's *event mapping macro* solves the problem of associating
measured data with dynamically allocated performance structures: a global
mapping index is incremented on the first invocation of every instrumented
event, and a static per-point ID variable captures that index, which then
indexes the per-process performance tables.

We reproduce that scheme exactly: each simulated kernel owns an
:class:`EventRegistry` (its global mapping index), and each
:class:`InstrumentationPoint` lazily binds its ID on first firing.  IDs are
therefore *per node* and depend on event first-arrival order — merged
cross-node analysis must map events by name, exactly as TAU's tooling does.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.points import Group, group_of


class PointKind(enum.IntEnum):
    """The three instrumentation macro types provided by KTAU."""

    ENTRY_EXIT = 0
    ATOMIC = 1


class InstrumentationPoint:
    """A single instrumentation site in the kernel source.

    Instances are created once per kernel at patch time (see
    :meth:`EventRegistry.point`) and carry the lazily-bound numeric ID.
    """

    __slots__ = ("name", "group", "kind", "event_id")

    def __init__(self, name: str, group: Group, kind: PointKind):
        self.name = name
        self.group = group
        self.kind = kind
        self.event_id: Optional[int] = None  # bound on first invocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Point {self.name} group={self.group} id={self.event_id}>"


class EventRegistry:
    """Per-kernel global mapping index and point table."""

    def __init__(self) -> None:
        self._next_id = 0
        self._points: dict[str, InstrumentationPoint] = {}
        self._by_id: list[InstrumentationPoint] = []

    def point(self, name: str, kind: PointKind = PointKind.ENTRY_EXIT) -> InstrumentationPoint:
        """Declare (or fetch) the instrumentation point called ``name``.

        The point's group is looked up in the declared table
        (:data:`repro.core.points.POINT_GROUPS`); undeclared names raise
        ``KeyError`` so stray instrumentation is caught early.
        """
        existing = self._points.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(f"point {name!r} redeclared with different kind")
            return existing
        pt = InstrumentationPoint(name, group_of(name), kind)
        self._points[name] = pt
        return pt

    def bind(self, point: InstrumentationPoint) -> int:
        """Bind ``point`` to the next global index (first invocation)."""
        if point.event_id is None:
            point.event_id = self._next_id
            self._next_id += 1
            self._by_id.append(point)
        return point.event_id

    # -- lookups ---------------------------------------------------------
    def by_id(self, event_id: int) -> InstrumentationPoint:
        return self._by_id[event_id]

    def name_of(self, event_id: int) -> str:
        return self._by_id[event_id].name

    def group_of_id(self, event_id: int) -> Group:
        return self._by_id[event_id].group

    def id_of(self, name: str) -> Optional[int]:
        """ID of a point by name, or ``None`` if never fired."""
        pt = self._points.get(name)
        return None if pt is None else pt.event_id

    @property
    def bound_count(self) -> int:
        """How many points have fired at least once."""
        return self._next_id

    def mapping_table(self) -> list[tuple[int, str, str]]:
        """The (id, name, group) table shipped with profile dumps."""
        return [(p.event_id, p.name, p.group.value) for p in self._by_id
                if p.event_id is not None]
