"""Direct measurement overhead model (paper Table 4).

Each KTAU measurement operation (a profile *start* at an entry point or a
*stop* at an exit point) costs real cycles on the measured machine.  The
paper reports, on the Chiba-City Pentium IIIs:

====== ====== ======== =====
 op     mean   std.dev  min
====== ====== ======== =====
start   244.4  236.3    160
stop    295.3  268.8    214
====== ====== ======== =====

The distribution is strongly right-skewed (std > mean-min): the common
case is a warm-cache hit near the minimum, with a heavy tail from cache and
TLB misses.  We model each cost as ``min + Gamma(k, theta)`` with ``k`` and
``theta`` chosen to match the reported mean and standard deviation exactly:

    mean - min = k * theta        std**2 = k * theta**2

When instrumentation is compiled in but disabled at boot/runtime the only
cost is a flag check (a load + branch), modelled as a small constant.

Sampling is batched through numpy for speed; the model is deterministic
given its RNG stream.
"""

from __future__ import annotations

import numpy as np


class _GammaTail:
    """``min + Gamma(k, theta)`` sampler with batched draws."""

    def __init__(self, rng: np.random.Generator, minimum: float, mean: float, std: float,
                 batch: int = 4096):
        excess = mean - minimum
        if excess <= 0 or std <= 0:
            raise ValueError("need mean > min and std > 0")
        self.minimum = float(minimum)
        self.k = (excess / std) ** 2
        self.theta = std * std / excess
        self.mean = float(mean)
        self.std = float(std)
        self._rng = rng
        self._batch = batch
        self._buf = np.empty(0)
        self._pos = 0

    def sample(self) -> int:
        if self._pos >= len(self._buf):
            self._buf = self.minimum + self._rng.gamma(self.k, self.theta, size=self._batch)
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return int(value)

    def sample_array(self, n: int) -> np.ndarray:
        """Draw ``n`` samples at once (used by the Table 4 harness)."""
        return self.minimum + self._rng.gamma(self.k, self.theta, size=n)


class OverheadModel:
    """Cycle costs of KTAU measurement operations.

    Parameters
    ----------
    rng:
        Deterministic stream for the heavy-tailed samplers.
    start_min, start_mean, start_std:
        Distribution of a profile *start* operation, in cycles.
    stop_min, stop_mean, stop_std:
        Distribution of a profile *stop* operation, in cycles.
    disabled_check_cycles:
        Cost of the runtime enable-flag check paid by compiled-in but
        disabled instrumentation (the ``Ktau Off`` configuration).
    trace_extra_cycles:
        Additional cost per operation when tracing is also enabled (the
        ring-buffer store).
    """

    #: Paper Table 4 defaults (Chiba-City P3, cycles).
    START = (160.0, 244.4, 236.3)
    STOP = (214.0, 295.3, 268.8)

    def __init__(self, rng: np.random.Generator, *,
                 start: tuple[float, float, float] = START,
                 stop: tuple[float, float, float] = STOP,
                 disabled_check_cycles: int = 3,
                 trace_extra_cycles: int = 40):
        self._start = _GammaTail(rng, *start)
        self._stop = _GammaTail(rng, *stop)
        self.disabled_check_cycles = int(disabled_check_cycles)
        self.trace_extra_cycles = int(trace_extra_cycles)

    # -- sampling -------------------------------------------------------
    def start_cycles(self) -> int:
        """Cost of one enabled entry-point measurement, in cycles."""
        return self._start.sample()

    def stop_cycles(self) -> int:
        """Cost of one enabled exit-point measurement, in cycles."""
        return self._stop.sample()

    def atomic_cycles(self) -> int:
        """Cost of one atomic-event measurement (modelled like a start)."""
        return self._start.sample()

    # -- bulk access for the Table 4 experiment --------------------------
    def sample_start_array(self, n: int) -> np.ndarray:
        return self._start.sample_array(n)

    def sample_stop_array(self, n: int) -> np.ndarray:
        return self._stop.sample_array(n)

    @property
    def start_params(self) -> tuple[float, float, float]:
        return (self._start.minimum, self._start.mean, self._start.std)

    @property
    def stop_params(self) -> tuple[float, float, float]:
        return (self._stop.minimum, self._stop.mean, self._stop.std)


class ZeroOverheadModel(OverheadModel):
    """An overhead model that charges nothing.

    Used for the ``Base`` perturbation configuration (vanilla kernel — no
    instrumentation compiled in at all) and for analyses that want
    measurement without perturbation.
    """

    def __init__(self) -> None:  # noqa: D107 - no RNG needed
        self.disabled_check_cycles = 0
        self.trace_extra_cycles = 0

    def start_cycles(self) -> int:
        return 0

    def stop_cycles(self) -> int:
        return 0

    def atomic_cycles(self) -> int:
        return 0

    def sample_start_array(self, n: int) -> np.ndarray:  # pragma: no cover
        return np.zeros(n)

    def sample_stop_array(self, n: int) -> np.ndarray:  # pragma: no cover
        return np.zeros(n)
