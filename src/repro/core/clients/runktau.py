"""runKtau: the ``time``-like wrapper client.

``time`` spawns a child, executes the job within it, and gathers
rudimentary performance data after it completes.  runKtau does the same,
except it extracts the process's detailed KTAU profile — which relies on
KTAU preserving a zombie's measurement data until reaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.core.libktau import LibKtau, Scope
from repro.core.wire import TaskProfileDump

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task
    from repro.kernel.usermode import UserContext


@dataclass
class RunKtauResult:
    """Filled in when the wrapped job exits."""

    task: "Task"
    profile: Optional[TaskProfileDump] = None
    exit_code: Optional[int] = None
    elapsed_ns: Optional[int] = None

    def report(self) -> str:
        """The formatted profile report (runKtau's stdout)."""
        if self.profile is None:
            return "runktau: job still running\n"
        hz = self.task.kernel.clock.hz
        header = (f"runktau: elapsed {self.elapsed_ns / 1e9:.6f}s "
                  f"exit={self.exit_code}\n")
        return header + LibKtau.format_profile(self.profile, hz)


def run_ktau(kernel: "Kernel",
             behavior: Callable[["UserContext"], Generator],
             comm: str = "job") -> RunKtauResult:
    """Run ``behavior`` under runKtau on ``kernel``.

    Returns immediately with a result object that is populated (profile
    extracted from the zombie store and reaped) when the child exits.
    """
    task = kernel.spawn(behavior, comm)
    result = RunKtauResult(task=task)
    lib = LibKtau(kernel.ktau_proc)

    def harvest(dead: "Task") -> None:
        profiles = lib.read_profiles(scope=Scope.OTHER, pids=[dead.pid],
                                     include_zombies=True)
        result.profile = profiles.get(dead.pid)
        result.exit_code = dead.exit_code
        result.elapsed_ns = dead.runtime_ns()
        kernel.ktau.reap(dead.pid)  # release the zombie's data

    task.on_exit(harvest)
    return result
