"""KTAU clients.

The paper's client taxonomy, reproduced as simulated processes / helpers:

* :mod:`repro.core.clients.ktaud` — KTAUD, the system-wide monitoring
  daemon: periodically extracts profile and trace data for all (or a
  configured subset of) processes.  Needed chiefly for closed-source
  applications that cannot be TAU-instrumented.
* :mod:`repro.core.clients.runktau` — runKtau, the ``time``-like wrapper:
  runs a job and extracts its detailed KTAU profile after it exits.
* :mod:`repro.core.clients.selfprofile` — a self-profiling client reading
  its own kernel profile mid-run through libKtau's SELF mode.
"""

from repro.core.clients.ktaud import Ktaud
from repro.core.clients.runktau import run_ktau, RunKtauResult
from repro.core.clients.selfprofile import self_profiling_task

__all__ = ["Ktaud", "run_ktau", "RunKtauResult", "self_profiling_task"]
