"""Self-profiling client: a process reading its own kernel profile.

Demonstrates libKtau's SELF mode and the online, daemon-free access path
the paper emphasises (TAU uses exactly this to merge kernel data into its
own output at measurement points).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.libktau import LibKtau, Scope
from repro.core.wire import TaskProfileDump
from repro.sim.units import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


def self_profiling_task(kernel: "Kernel", phases: int = 5,
                        phase_compute_ns: int = 5 * MSEC,
                        snapshots: list[TaskProfileDump] | None = None):
    """Spawn a process that snapshots its own profile between phases.

    Returns ``(task, snapshots)``; each phase does some work, then reads
    its own kernel profile through /proc/ktau (SELF scope) — so the list
    shows monotonically growing counters, observed online, without any
    daemon.
    """
    if snapshots is None:
        snapshots = []

    def behavior(ctx):
        lib = LibKtau(kernel.ktau_proc, self_pid=ctx.task.pid)
        for phase in range(phases):
            yield from ctx.compute(phase_compute_ns)
            yield from ctx.sleep(1 * MSEC)  # generate some scheduling events
            # The read itself costs syscalls + copies.
            yield from ctx.compute(30 * USEC)
            profiles = lib.read_profiles(scope=Scope.SELF)
            snapshots.append(profiles[ctx.task.pid])

    task = kernel.spawn(behavior, "selfprof")
    return task, snapshots
