"""KTAUD: the KTAU daemon.

KTAUD periodically extracts profile and trace data from the kernel; it can
gather information for all processes or a subset (libKtau's ``all`` and
``other`` modes).  It is required primarily to monitor closed-source
applications that cannot be instrumented — and it is itself a process
whose reads cost CPU, which is why a daemon-based model "causes extra
perturbation" (§2); the read cost here is proportional to the data volume
extracted, so that perturbation is real in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.libktau import LibKtau, Scope
from repro.core.procfs import KtauProcTransientError
from repro.core.retry import RetryPolicy
from repro.core.wire import TaskProfileDump, TraceDump
from repro.obs import runtime as _obs
from repro.sim.units import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass
class KtaudSnapshot:
    """One periodic extraction."""

    time_ns: int
    profiles: dict[int, TaskProfileDump]
    traces: dict[int, TraceDump] = field(default_factory=dict)


class Ktaud:
    """A KTAUD instance on one node.

    Parameters
    ----------
    kernel:
        The node to monitor.
    period_ns:
        Extraction period.
    pids:
        Specific PIDs to monitor (``other`` mode), or ``None`` for all.
    drain_traces:
        Also drain trace buffers of the monitored PIDs each period.
    on_snapshot:
        Optional streaming hook, called with each :class:`KtaudSnapshot`
        right after it is appended to :attr:`snapshots`.  This is how an
        online consumer (:mod:`repro.monitor`) subscribes to the
        extraction stream instead of post-processing the hoarded list.
        The callback observes; it must not touch simulated state.
    max_snapshots:
        Retention cap on :attr:`snapshots` (oldest dropped first), so a
        long monitored run with a streaming consumer does not grow
        memory without bound.  ``None`` (the default) keeps everything —
        the historical post-mortem behaviour, byte-identical.
    """

    #: CPU cost charged per KiB of extracted data (parse + copy).
    READ_COST_PER_KB_NS = 4 * USEC

    #: Degradation policy for transient /proc/ktau failures: a few
    #: attempts with a linear simulated-time backoff, then the period is
    #: skipped (counted in :attr:`failed_extractions`) instead of
    #: crashing the daemon.  Only ever exercised under fault injection.
    RETRY = RetryPolicy(max_attempts=3, backoff_ns=5 * MSEC)

    def __init__(self, kernel: "Kernel", period_ns: int = 500 * MSEC,
                 pids: Optional[list[int]] = None, drain_traces: bool = False,
                 on_snapshot: Optional[Callable[["KtaudSnapshot"], None]] = None,
                 max_snapshots: Optional[int] = None):
        if max_snapshots is not None and max_snapshots < 1:
            raise ValueError("max_snapshots must be >= 1 (or None)")
        self.kernel = kernel
        self.period_ns = period_ns
        self.pids = pids
        self.drain_traces = drain_traces
        self.on_snapshot = on_snapshot
        self.max_snapshots = max_snapshots
        #: snapshots dropped by the retention cap (never by default).
        self.dropped = 0
        #: fault injection: while ``engine.now`` is below this the daemon
        #: wakes but skips extraction (a hung collector that keeps its
        #: process alive).  Zero means healthy — one int compare per
        #: period, so the fault hook costs nothing when detached.
        self.suspended_until_ns = 0
        #: periods skipped because the hang fault was active.
        self.suspended_periods = 0
        #: transient /proc/ktau retries performed (fault degradation).
        self.retries = 0
        #: periods abandoned after the retry policy was exhausted.
        self.failed_extractions = 0
        self.lib = LibKtau(kernel.ktau_proc)
        self.snapshots: list[KtaudSnapshot] = []
        self.task: Optional["Task"] = None

    def start(self) -> "Task":
        """Spawn the daemon process."""
        self.task = self.kernel.spawn(self._behavior, "ktaud")
        return self.task

    def stop(self) -> None:
        if self.task is not None and self.task.alive:
            self.kernel.sched.kill_blocked(self.task)

    # ------------------------------------------------------------------
    def _behavior(self, ctx):
        while True:
            yield from ctx.sleep(self.period_ns)
            if ctx.now < self.suspended_until_ns:
                # Hung by fault injection: awake but doing no work.
                self.suspended_periods += 1
                continue
            extraction = yield from self._extract(ctx)
            if extraction is None:
                continue  # retry policy exhausted; skip this period
            snapshot, volume = extraction
            self.snapshots.append(snapshot)
            if self.max_snapshots is not None \
                    and len(self.snapshots) > self.max_snapshots:
                del self.snapshots[0]
                self.dropped += 1
            if self.on_snapshot is not None:
                self.on_snapshot(snapshot)
            # Extraction work is real CPU time on the monitored node.
            cost = max(20 * USEC, (volume * self.READ_COST_PER_KB_NS) // 1024)
            yield from ctx.compute(cost)

    def _extract(self, ctx):
        """One extraction attempt with bounded transient-fault retry.

        A generator (it sleeps simulated backoff time between attempts):
        returns ``(snapshot, volume)`` on success or ``None`` when the
        :attr:`RETRY` policy is exhausted — the daemon then skips the
        period instead of dying, which is the degradation contract the
        cluster monitor's staleness tracking is built on.
        """
        scope = Scope.ALL if self.pids is None else Scope.OTHER
        for attempt in range(1, self.RETRY.max_attempts + 1):
            try:
                profiles = self.lib.read_profiles(scope=scope, pids=self.pids,
                                                  include_zombies=False)
                # Per-entry wire sizes: perf 28, atomic 36, counter 52
                # bytes, plus 41 for a task's lifetime PMC block.  The
                # counter terms are zero when the counters build option
                # is off, so enabling them is what makes KTAUD's
                # extraction perturbation grow with the richer payload.
                volume = sum(len(d.perf) * 28 + len(d.atomic) * 36
                             + len(d.counters) * 52
                             + (41 if d.pmc is not None else 0)
                             for d in profiles.values())
                snapshot = KtaudSnapshot(time_ns=ctx.now, profiles=profiles)
                if self.drain_traces:
                    for pid in (self.pids if self.pids is not None
                                else list(profiles)):
                        dump = self.lib.read_trace(pid)
                        if dump.records or dump.lost:
                            snapshot.traces[pid] = dump
                            volume += len(dump.records) * 21
                return snapshot, volume
            except KtauProcTransientError:
                if attempt >= self.RETRY.max_attempts:
                    self.failed_extractions += 1
                    if _obs.metrics_on:
                        from repro.obs.metrics import REGISTRY
                        REGISTRY.counter("collect.failures").inc()
                    return None
                self.retries += 1
                if _obs.metrics_on:
                    from repro.obs.metrics import REGISTRY
                    REGISTRY.counter("collect.retries").inc()
                yield from ctx.sleep(self.RETRY.backoff_for(attempt))
        return None  # pragma: no cover - loop always returns

    # ------------------------------------------------------------------
    def profile_series(self, pid: int, event: str) -> list[tuple[int, int]]:
        """(time, inclusive cycles) series of one event for one PID —
        KTAUD's raison d'être: *online* observation of a running process."""
        series: list[tuple[int, int]] = []
        for snap in self.snapshots:
            dump = snap.profiles.get(pid)
            if dump is None:
                continue
            perf = dump.perf.get(event)
            if perf is not None:
                series.append((snap.time_ns, perf[1]))
        return series
