"""libKtau: the user-space access library.

libKtau exports a small API that hides the /proc/ktau protocol from
clients and shields them from kernel-side changes.  It provides:

* kernel control (runtime enable/disable, overhead query),
* kernel data retrieval (profiles and traces, with the size/read retry
  loop the session-less protocol requires),
* data conversion (binary to/from ASCII), and
* formatted stream output.

Access *modes* follow the paper: ``SELF`` (a process reading its own
profile), ``OTHER`` (a specific set of PIDs), and ``ALL`` (every process —
what KTAUD uses).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.procfs import KtauProcFS
from repro.core.points import Group
from repro.core.retry import DEFAULT_POLICY, RetryPolicy, grow_and_retry, sized_read
from repro.core.wire import TaskProfileDump, TraceDump, unpack_profiles, unpack_trace


class Scope(enum.Enum):
    """libKtau access modes."""

    SELF = "self"
    OTHER = "other"
    ALL = "all"


class LibKtau:
    """User-space handle to one node's KTAU.

    Parameters
    ----------
    proc:
        The node's /proc/ktau interface.
    self_pid:
        PID used by ``SELF``-scope calls (the calling process), if any.
    """

    #: How many times the size/read loop retries before giving up when the
    #: profile keeps growing between calls (mirrors the default policy).
    MAX_RETRIES = DEFAULT_POLICY.max_attempts

    def __init__(self, proc: KtauProcFS, self_pid: Optional[int] = None,
                 retry: RetryPolicy = DEFAULT_POLICY):
        self._proc = proc
        self._self_pid = self_pid
        self._retry = retry

    # ------------------------------------------------------------------
    # data retrieval
    # ------------------------------------------------------------------
    def _scope_pids(self, scope: Scope, pids: Optional[list[int]]) -> Optional[list[int]]:
        if scope is Scope.SELF:
            if self._self_pid is None:
                raise ValueError("SELF scope requires a bound pid")
            return [self._self_pid]
        if scope is Scope.OTHER:
            if not pids:
                raise ValueError("OTHER scope requires explicit pids")
            return list(pids)
        return None  # ALL

    def read_profiles(self, scope: Scope = Scope.ALL,
                      pids: Optional[list[int]] = None,
                      include_zombies: bool = False) -> dict[int, TaskProfileDump]:
        """Retrieve and decode profiles, handling the size/read race.

        Implements the documented two-call protocol via the shared
        :func:`repro.core.retry.grow_and_retry` helper: get the size,
        allocate a buffer, read; if the kernel reports the data outgrew
        the buffer, retry with the new size, up to the bound of the
        policy this handle was built with
        (:class:`~repro.core.retry.RetryExhaustedError` on exhaustion).
        """
        want = self._scope_pids(scope, pids)
        data = grow_and_retry(
            lambda: self._proc.profile_size(want,
                                            include_zombies=include_zombies),
            lambda bufsize: self._proc.profile_read(
                bufsize, want, include_zombies=include_zombies),
            self._retry, what="ktau profile read")
        return unpack_profiles(data)

    def read_trace(self, pid: int, bufsize: Optional[int] = None) -> TraceDump:
        """Drain and decode ``pid``'s kernel trace buffer.

        Unlike profiles the drain is destructive, so there is no retry:
        the shared :func:`repro.core.retry.sized_read` helper sizes the
        buffer (unless the caller passed one) and reads once; any
        overflow is genuinely lost and surfaced via the dump.
        """
        if bufsize is None:
            data, full = sized_read(lambda: self._proc.trace_size(pid),
                                    lambda n: self._proc.trace_read(pid, n))
        else:
            data, full = self._proc.trace_read(pid, bufsize)
        if not data:
            return TraceDump(pid=pid, lost=0)
        dump = unpack_trace(data) if len(data) >= full else unpack_trace(data[:full])
        return dump

    # ------------------------------------------------------------------
    # kernel control
    # ------------------------------------------------------------------
    def enable_groups(self, *groups: Group) -> None:
        self._proc.ioctl_set_groups(True, groups)

    def disable_groups(self, *groups: Group) -> None:
        self._proc.ioctl_set_groups(False, groups)

    def enable_points(self, *names: str) -> None:
        """Re-enable individual instrumentation points at runtime."""
        self._proc.ioctl_set_points(True, names)

    def disable_points(self, *names: str) -> None:
        """Silence individual instrumentation points at runtime — the §6
        extension: no reboot, no recompilation."""
        self._proc.ioctl_set_points(False, names)

    def measurement_overhead_cycles(self) -> int:
        """KTAU's own accounting of total measurement cost (cycles)."""
        return self._proc.ioctl_overhead()

    # ------------------------------------------------------------------
    # data conversion (binary <-> ASCII) and formatted output
    # ------------------------------------------------------------------
    @staticmethod
    def to_ascii(profiles: dict[int, TaskProfileDump]) -> str:
        """Render decoded profiles to the line-oriented ASCII interchange form."""
        lines: list[str] = ["#ktau-ascii v1"]
        for pid in sorted(profiles):
            dump = profiles[pid]
            lines.append(f"task {pid} {dump.comm}")
            for name in sorted(dump.perf):
                count, incl, excl = dump.perf[name]
                group = dump.groups.get(name, "")
                lines.append(f"perf {name} {group} {count} {incl} {excl}")
            for name in sorted(dump.atomic):
                count, total, mn, mx = dump.atomic[name]
                group = dump.groups.get(name, "")
                lines.append(f"atomic {name} {group} {count} {total} {mn} {mx}")
            for (ctx, name) in sorted(dump.context_pairs):
                count, excl = dump.context_pairs[(ctx, name)]
                lines.append(f"ctx {ctx} {name} {count} {excl}")
            for name in sorted(dump.counters):
                count, cycles, insn, l2, minflt, majflt = dump.counters[name]
                lines.append(f"cnt {name} {count} {cycles} {insn} {l2} "
                             f"{minflt} {majflt}")
            for (parent, name) in sorted(dump.edges):
                count, incl = dump.edges[(parent, name)]
                lines.append(f"edge {parent or '-'} {name} {count} {incl}")
            if dump.pmc is not None:
                lines.append("pmc " + " ".join(str(v) for v in dump.pmc))
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_ascii(text: str) -> dict[int, TaskProfileDump]:
        """Parse the ASCII interchange form back into decoded profiles."""
        lines = text.splitlines()
        if not lines or not lines[0].startswith("#ktau-ascii"):
            raise ValueError("not a ktau ASCII dump")
        profiles: dict[int, TaskProfileDump] = {}
        current: Optional[TaskProfileDump] = None
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                current = LibKtau._parse_ascii_line(line, profiles, current)
            except (IndexError, ValueError) as exc:
                raise ValueError(f"malformed ktau ASCII record {line!r}") from exc
        return profiles

    @staticmethod
    def _parse_ascii_line(line: str, profiles: dict[int, TaskProfileDump],
                          current: Optional[TaskProfileDump]
                          ) -> Optional[TaskProfileDump]:
        """Parse one ASCII record into ``profiles``; returns the (possibly
        new) current task dump."""
        parts = line.split()
        tag = parts[0]
        if tag == "task":
            pid = int(parts[1])
            comm = parts[2] if len(parts) > 2 else ""
            current = TaskProfileDump(pid=pid, comm=comm)
            profiles[pid] = current
        elif current is None:
            raise ValueError("record before any task line")
        elif tag == "perf":
            name, group = parts[1], parts[2]
            current.perf[name] = (int(parts[3]), int(parts[4]), int(parts[5]))
            current.groups[name] = group
        elif tag == "atomic":
            name, group = parts[1], parts[2]
            current.atomic[name] = (int(parts[3]), int(parts[4]),
                                    int(parts[5]), int(parts[6]))
            current.groups[name] = group
        elif tag == "ctx":
            ctx, name = parts[1], parts[2]
            current.context_pairs[(ctx, name)] = (int(parts[3]), int(parts[4]))
        elif tag == "cnt":
            current.counters[parts[1]] = (int(parts[2]), int(parts[3]),
                                          int(parts[4]), int(parts[5]),
                                          int(parts[6]), int(parts[7]))
        elif tag == "pmc":
            if len(parts) != 6:
                raise ValueError("pmc record needs 5 counter values")
            current.pmc = tuple(int(v) for v in parts[1:6])
        elif tag == "edge":
            parent = "" if parts[1] == "-" else parts[1]
            current.edges[(parent, parts[2])] = (int(parts[3]), int(parts[4]))
        else:
            raise ValueError(f"unknown record tag {tag!r}")
        return current

    @staticmethod
    def format_profile(dump: TaskProfileDump, hz: float, width: int = 72) -> str:
        """Human-readable per-task report (runKtau's output format).

        Cycle counters are converted to seconds with the node frequency
        ``hz`` (cycles / hz = seconds).
        """
        header = f"KTAU profile: pid={dump.pid} comm={dump.comm}"
        lines = [header, "-" * min(width, len(header))]
        lines.append(f"{'event':<28} {'count':>8} {'incl(s)':>12} {'excl(s)':>12}")
        for name, (count, incl, excl) in sorted(
                dump.perf.items(), key=lambda kv: -kv[1][2]):
            lines.append(f"{name:<28} {count:>8} {incl * 1.0 / hz:>12.6f} "
                         f"{excl * 1.0 / hz:>12.6f}")
        for name, (count, total, mn, mx) in sorted(dump.atomic.items()):
            lines.append(f"{name:<28} {count:>8} sum={total} min={mn} max={mx}")
        return "\n".join(lines) + "\n"
