"""Per-task circular trace buffers.

When tracing is configured, KTAU attaches a fixed-size circular buffer to
each process; entries are (timestamp, event, kind, value) records.  If
user-space (KTAUD or a self-tracing client) does not drain the buffer fast
enough, the oldest records are overwritten and *lost* — the paper calls
this out explicitly, and tests exercise it.

Hot-path note: tracing doubles the per-event measurement work, so
:meth:`TraceBuffer.append` batches — records land in a plain pending list
(one ``list.append`` per record) and are folded into the ring in bulk,
with slice assignment instead of per-record modulo arithmetic, when the
batch fills or the buffer is read.  Every observable (``peek``, ``drain``,
``len``, ``lost_count``, ``total_records``) flushes first, so the
batching is invisible to clients; strict mode bypasses it entirely so
overflow raises at the exact offending append.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class TraceKind(enum.IntEnum):
    """Record types in a KTAU trace."""

    ENTRY = 0
    EXIT = 1
    ATOMIC = 2


@dataclass(frozen=True)
class TraceRecord:
    """One trace-buffer record.

    ``cycles`` is the node-local TSC timestamp; ``event_id`` indexes the
    node's event-mapping table; ``value`` carries the atomic-event payload
    (zero for entry/exit records).
    """

    cycles: int
    event_id: int
    kind: TraceKind
    value: int = 0


class TraceOverflowError(RuntimeError):
    """Strict-mode sanitizer: a trace record was overwritten unread.

    Record loss is legal KTAU behaviour (the paper calls it out), but a
    client that *believes* it drains fast enough can opt into strict mode
    to be told the moment that belief is wrong, instead of silently
    producing a trace with holes.
    """


#: Pending records folded into the ring once this many accumulate.
_BATCH = 128


class TraceBuffer:
    """Fixed-capacity circular buffer of :class:`TraceRecord`.

    ``drain`` returns and removes the buffered records in order;
    ``lost_count`` reports how many records were overwritten before being
    read (cumulative).  With ``strict=True`` an overwrite raises
    :class:`TraceOverflowError` instead of silently losing the record.
    """

    def __init__(self, capacity: int, strict: bool = False):
        if capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        self.strict = strict
        self._buf: list[TraceRecord | None] = [None] * capacity
        self._head = 0  # next write slot
        self._count = 0  # valid records currently in the ring
        self._lost = 0  # cumulative overwrites
        self._total = 0  # cumulative writes
        self._pending: list[TraceRecord] = []  # batched, not yet in the ring
        #: cumulative batched folds into the ring (observability; strict
        #: mode never batches, so it stays 0 there)
        self.flush_count = 0

    def append(self, record: TraceRecord) -> None:
        if self.strict:
            # Strict mode trades the batching away for an exact raise
            # point: the sanitizer must name the first offending append.
            if self._count == self.capacity:
                raise TraceOverflowError(
                    f"trace buffer overflow: capacity {self.capacity} "
                    f"reached, oldest record would be lost unread "
                    f"(total written: {self._total})")
            self._count += 1
            self._buf[self._head] = record
            self._head = (self._head + 1) % self.capacity
            self._total += 1
            return
        pending = self._pending
        pending.append(record)
        if len(pending) >= _BATCH:
            self._flush()

    def _flush(self) -> None:
        """Fold the pending batch into the ring in bulk."""
        pending = self._pending
        n = len(pending)
        if not n:
            return
        cap = self.capacity
        self.flush_count += 1
        self._total += n
        overflow = self._count + n - cap
        if overflow > 0:
            self._lost += overflow
            self._count = cap
        else:
            self._count += n
        buf = self._buf
        head = self._head
        i = 0
        if n > cap:
            # Only the last ``cap`` records survive; skip straight to
            # them, advancing head as if each dropped record was written.
            i = n - cap
            head = (head + i) % cap
        while i < n:
            k = min(cap - head, n - i)
            buf[head:head + k] = pending[i:i + k]
            head += k
            if head == cap:
                head = 0
            i += k
        self._head = head
        self._pending = []

    @property
    def lost_count(self) -> int:
        """Cumulative records overwritten before being read."""
        self._flush()
        return self._lost

    @property
    def total_records(self) -> int:
        """Cumulative records ever written."""
        self._flush()
        return self._total

    def __len__(self) -> int:
        self._flush()
        return self._count

    def peek(self) -> list[TraceRecord]:
        """Buffered records oldest-first, without removing them."""
        self._flush()
        start = (self._head - self._count) % self.capacity
        out: list[TraceRecord] = []
        for i in range(self._count):
            rec = self._buf[(start + i) % self.capacity]
            assert rec is not None
            out.append(rec)
        return out

    def drain(self) -> list[TraceRecord]:
        """Remove and return all buffered records, oldest-first."""
        out = self.peek()
        self._count = 0
        return out

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.peek())
