"""Per-task circular trace buffers.

When tracing is configured, KTAU attaches a fixed-size circular buffer to
each process; entries are (timestamp, event, kind, value) records.  If
user-space (KTAUD or a self-tracing client) does not drain the buffer fast
enough, the oldest records are overwritten and *lost* — the paper calls
this out explicitly, and tests exercise it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class TraceKind(enum.IntEnum):
    """Record types in a KTAU trace."""

    ENTRY = 0
    EXIT = 1
    ATOMIC = 2


@dataclass(frozen=True)
class TraceRecord:
    """One trace-buffer record.

    ``cycles`` is the node-local TSC timestamp; ``event_id`` indexes the
    node's event-mapping table; ``value`` carries the atomic-event payload
    (zero for entry/exit records).
    """

    cycles: int
    event_id: int
    kind: TraceKind
    value: int = 0


class TraceOverflowError(RuntimeError):
    """Strict-mode sanitizer: a trace record was overwritten unread.

    Record loss is legal KTAU behaviour (the paper calls it out), but a
    client that *believes* it drains fast enough can opt into strict mode
    to be told the moment that belief is wrong, instead of silently
    producing a trace with holes.
    """


class TraceBuffer:
    """Fixed-capacity circular buffer of :class:`TraceRecord`.

    ``drain`` returns and removes the buffered records in order;
    ``lost_count`` reports how many records were overwritten before being
    read (cumulative).  With ``strict=True`` an overwrite raises
    :class:`TraceOverflowError` instead of silently losing the record.
    """

    def __init__(self, capacity: int, strict: bool = False):
        if capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        self.strict = strict
        self._buf: list[TraceRecord | None] = [None] * capacity
        self._head = 0  # next write slot
        self._count = 0  # valid records currently buffered
        self.lost_count = 0  # cumulative overwrites
        self.total_records = 0  # cumulative writes

    def append(self, record: TraceRecord) -> None:
        if self._count == self.capacity:
            if self.strict:
                raise TraceOverflowError(
                    f"trace buffer overflow: capacity {self.capacity} "
                    f"reached, oldest record would be lost unread "
                    f"(total written: {self.total_records})")
            self.lost_count += 1
        else:
            self._count += 1
        self._buf[self._head] = record
        self._head = (self._head + 1) % self.capacity
        self.total_records += 1

    def __len__(self) -> int:
        return self._count

    def peek(self) -> list[TraceRecord]:
        """Buffered records oldest-first, without removing them."""
        start = (self._head - self._count) % self.capacity
        out: list[TraceRecord] = []
        for i in range(self._count):
            rec = self._buf[(start + i) % self.capacity]
            assert rec is not None
            out.append(rec)
        return out

    def drain(self) -> list[TraceRecord]:
        """Remove and return all buffered records, oldest-first."""
        out = self.peek()
        self._count = 0
        return out

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.peek())
