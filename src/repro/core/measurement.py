"""The KTAU measurement system.

This module is the in-kernel half of KTAU: it owns the per-task performance
structures hung off the simulated process control block, performs the
activation-stack inclusive/exclusive accounting, writes trace records, and
charges measurement overhead back into simulated time (which is what makes
the perturbation study meaningful).

Semantics reproduced from the paper:

* **Entry/exit events** — high-resolution (TSC cycle) timing; an
  activation-stack depth is tracked and used to compute inclusive and
  exclusive time.  Inclusive time is only accumulated for the *outermost*
  activation of a recursive event.
* **Atomic events** — stand-alone events carrying a value (e.g. network
  packet sizes); count/sum/min/max are kept.
* **Event mapping** — numeric IDs bound on first firing through the
  kernel's :class:`~repro.core.registry.EventRegistry`.
* **Process life-cycle** — structures are allocated at process creation
  and preserved in a zombie store at exit until a client (e.g. runKtau)
  reaps them.
* **Process-centric attribution** — kernel events are recorded against
  whatever task is *current* on the CPU, including interrupt handling that
  merely happens to run in that task's context; the user-level (TAU)
  context active at event entry is tracked when ``merge_context`` is
  built in, powering the merged user/kernel views.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.core.config import KtauBuildConfig, KtauRuntimeControl
from repro.core.overhead import OverheadModel, ZeroOverheadModel
from repro.core.registry import EventRegistry, InstrumentationPoint, PointKind
from repro.core.tracebuf import TraceBuffer, TraceKind, TraceRecord
from repro.obs import runtime as _obs
from repro.sim.clock import CycleClock


class InstrumentationImbalanceError(RuntimeError):
    """Strict-mode sanitizer: the activation stack was misused.

    In the default (paper-faithful) mode an unmatched exit is counted in
    ``KtauTaskData.unmatched_exits`` and the sample dropped — correct for
    a production kernel where mid-region enable/disable legitimately
    unbalances the stack.  Strict mode is the development-time companion
    to the ``ktaulint`` static balance rule (KTAU101/KTAU102): it raises
    at the first imbalance, naming the instrumentation point, so the
    dynamic check validates what the static pass claims.
    """


class ShardIsolationError(RuntimeError):
    """Shard-isolation sanitizer: cross-node state access detected.

    Raised by the opt-in :class:`~repro.cluster.shardsan.ShardIsolationSanitizer`
    when code executing on behalf of one node touches another node's
    measurement or scheduling state outside a declared exchange point.
    The error class lives here (next to its strict-mode sibling
    :class:`InstrumentationImbalanceError`) because the measurement layer
    is the guarded state: per-task KTAU structures are the canonical
    shard-local data the upcoming parallel engine must never share.
    """


class PerfData:
    """Profile counters for one entry/exit event in one task."""

    __slots__ = ("count", "incl_cycles", "excl_cycles")

    def __init__(self) -> None:
        self.count = 0
        self.incl_cycles = 0
        self.excl_cycles = 0

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.count, self.incl_cycles, self.excl_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfData(count={self.count}, incl={self.incl_cycles}, excl={self.excl_cycles})"


class AtomicData:
    """Profile counters for one atomic event in one task."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.count, self.sum, self.min or 0, self.max or 0)


class _StackEntry:
    """One activation-stack frame."""

    __slots__ = ("event_id", "entry_cycles", "child_cycles", "user_ctx",
                 "entry_pmc")

    def __init__(self, event_id: int, entry_cycles: int, user_ctx: Optional[str]):
        self.event_id = event_id
        self.entry_cycles = entry_cycles
        self.child_cycles = 0
        self.user_ctx = user_ctx
        #: PMC register snapshot taken at entry (cycles, insn, l2 misses,
        #: minor faults, major faults); None when counters are off
        self.entry_pmc: Optional[tuple[int, int, int, int, int]] = None


class KtauTaskData:
    """KTAU's per-process measurement structure (lives in the PCB).

    Attributes
    ----------
    profile / atomic:
        Event-ID-indexed counter tables.
    stack:
        The activation stack used for inclusive/exclusive accounting.
    trace:
        Circular trace buffer, present when tracing is built in.
    user_context:
        Name of the innermost user-level (TAU) routine currently active in
        this process, or ``None``; maintained by the TAU layer, consumed by
        the merge support.
    context_pairs:
        ``(user_context, event_id) -> [count, excl_cycles]`` attribution
        map (the merged-view data source), kept when ``merge_context``.
    pending_overhead_ns:
        Measurement overhead charged but not yet folded into simulated
        time; the CPU executor drains this into the task's next burst.
    """

    __slots__ = (
        "pid", "comm", "profile", "atomic", "stack", "trace", "user_context",
        "context_pairs", "pending_overhead_ns", "overhead_cycles",
        "active_counts", "unmatched_exits", "frozen",
        "counter_source", "counter_profile", "callgraph",
    )

    def __init__(self, pid: int, comm: str, trace: Optional[TraceBuffer]):
        self.pid = pid
        self.comm = comm
        self.profile: dict[int, PerfData] = {}
        self.atomic: dict[int, AtomicData] = {}
        self.stack: list[_StackEntry] = []
        self.trace = trace
        self.user_context: Optional[str] = None
        self.context_pairs: dict[tuple[str, int], list[int]] = {}
        self.pending_overhead_ns = 0
        self.overhead_cycles = 0
        self.active_counts: dict[int, int] = {}
        self.unmatched_exits = 0
        #: Set when the process dies; further recording is a no-op so that
        #: late generator teardown cannot corrupt the zombie profile.
        self.frozen = False
        #: callable returning the task's PMC snapshot (cycles, insn,
        #: l2 misses, minor faults, major faults), installed by the
        #: kernel at registration when the counters extension is built in
        self.counter_source = None
        #: event_id -> [count, incl cycles, incl instructions,
        #: incl l2 misses, incl minor faults, incl major faults]
        self.counter_profile: dict[int, list[int]] = {}
        #: (parent key, event_id) -> [count, incl cycles]; parent key is
        #: "K:<event>" for a kernel parent, "U:<routine>" for the user
        #: context at a stack root, or "" for a bare root
        self.callgraph: dict[tuple[str, int], list[int]] = {}

    @property
    def depth(self) -> int:
        return len(self.stack)

    def perf(self, event_id: int) -> PerfData:
        data = self.profile.get(event_id)
        if data is None:
            data = PerfData()
            self.profile[event_id] = data
        return data


class Ktau:
    """One kernel's KTAU measurement system.

    Parameters
    ----------
    clock:
        The node's TSC.
    build:
        Compile-time configuration (which groups exist, tracing, merge).
    control:
        Boot/runtime enable flags; defaults to "everything compiled is on".
    overhead:
        Cost model for measurement operations; ``None`` selects the paper's
        Table 4 model only if the caller provides an RNG-backed model, so
        the default here is zero overhead (callers building real kernels
        pass a proper model).
    strict:
        Opt-in sanitizer mode.  When true, activation-stack imbalance
        (an exit with no matching entry, out of LIFO order, or a task
        dying with spans still open) raises
        :class:`InstrumentationImbalanceError` naming the point, and
        per-task trace buffers raise
        :class:`~repro.core.tracebuf.TraceOverflowError` on record loss.
        Default off: production behaviour (count and drop) is unchanged.
    """

    def __init__(self, clock: CycleClock, build: KtauBuildConfig,
                 control: Optional[KtauRuntimeControl] = None,
                 overhead: Optional[OverheadModel] = None,
                 strict: bool = False):
        self.clock = clock
        self.build = build
        self.control = control if control is not None else KtauRuntimeControl(build)
        self.overhead = overhead if overhead is not None else ZeroOverheadModel()
        self.strict = strict
        self.registry = EventRegistry()
        self.tasks: dict[int, KtauTaskData] = {}
        self.zombies: dict[int, KtauTaskData] = {}
        self.total_overhead_cycles = 0
        # Hot-path accelerators: firing state per point is invariant until
        # the runtime control changes, so cache it against the control's
        # version counter; a zero overhead model never charges anything,
        # so its sampler calls can be skipped outright.
        self._no_overhead = isinstance(self.overhead, ZeroOverheadModel)
        self._state_cache: dict[InstrumentationPoint, int] = {}
        self._state_cache_version = -1
        # Harness observability (repro.obs): always-on plain counters for
        # the firing-state cache, published as deltas at flush points
        # (task exit, /proc snapshot) — never per firing.
        self._firings = 0
        self._cache_misses = 0
        self._cache_invalidations = 0
        self._counter_samples = 0
        self._obs_base = [0, 0, 0, 0]

    # ------------------------------------------------------------------
    # Process life-cycle (engaged on fork/exit)
    # ------------------------------------------------------------------
    def register_task(self, pid: int, comm: str) -> KtauTaskData:
        """Allocate measurement structures for a newly created process."""
        if pid in self.tasks:
            raise ValueError(f"pid {pid} already registered")
        trace = None
        if self.build.tracing:
            trace = TraceBuffer(self.build.trace_buffer_entries,
                                strict=self.strict)
        data = KtauTaskData(pid, comm, trace)
        self.tasks[pid] = data
        return data

    def on_task_exit(self, pid: int) -> None:
        """Move a dying process's data to the zombie store for later reaping."""
        data = self.tasks.pop(pid, None)
        if data is not None:
            if self.strict and data.stack:
                open_points = ", ".join(
                    f"'{self.registry.name_of(frame.event_id)}'"
                    for frame in data.stack)
                raise InstrumentationImbalanceError(
                    f"task {pid} ({data.comm}) exited with "
                    f"{len(data.stack)} instrumentation span(s) still "
                    f"open: {open_points} (every entry needs a matching "
                    f"exit before process exit)")
            self.zombies[pid] = data
            if _obs.metrics_on:
                self._publish_obs(data)

    def reap(self, pid: int) -> Optional[KtauTaskData]:
        """Remove and return a zombie's data (runKtau's extraction step)."""
        return self.zombies.pop(pid, None)

    # ------------------------------------------------------------------
    # The three instrumentation macros
    # ------------------------------------------------------------------
    def _charge(self, data: KtauTaskData, cycles: int) -> None:
        if cycles:
            data.pending_overhead_ns += self.clock.ns_for_cycles(cycles)
            data.overhead_cycles += cycles
            self.total_overhead_cycles += cycles

    def _firing_state(self, point: InstrumentationPoint, data: KtauTaskData) -> int:
        """0 = no-op, 1 = compiled but disabled (flag check), 2 = enabled."""
        if data.frozen:
            return 0
        self._firings += 1
        control = self.control
        version = control.version
        if version != self._state_cache_version:
            self._state_cache.clear()
            self._state_cache_version = version
            self._cache_invalidations += 1
        state = self._state_cache.get(point)
        if state is None:
            self._cache_misses += 1
            if not control.group_compiled(point.group):
                state = 0
            elif not control.group_enabled(point.group):
                state = 1
            elif not control.point_enabled(point.name):
                state = 1  # per-point runtime disable: flag-check cost only
            else:
                state = 2
            self._state_cache[point] = state
        return state

    def entry(self, data: KtauTaskData, point: InstrumentationPoint,
              at_cycles: Optional[int] = None) -> None:
        """Entry/exit macro: entry side.

        ``at_cycles`` lets kernel paths whose durations are computed ahead
        of time (interrupt/softirq sequences) stamp events at their true
        positions instead of the current TSC.
        """
        state = self._firing_state(point, data)
        if state == 0:
            return
        if state == 1:
            self._charge(data, self.overhead.disabled_check_cycles)
            return
        event_id = point.event_id
        if event_id is None:
            event_id = self.registry.bind(point)
        now = self.clock.read() if at_cycles is None else at_cycles
        frame = _StackEntry(event_id, now, data.user_context)
        if self.build.counters and data.counter_source is not None:
            frame.entry_pmc = data.counter_source()
        data.stack.append(frame)
        data.active_counts[event_id] = data.active_counts.get(event_id, 0) + 1
        cost = 0 if self._no_overhead else self.overhead.start_cycles()
        if data.trace is not None:
            data.trace.append(TraceRecord(now, event_id, TraceKind.ENTRY))
            cost += self.overhead.trace_extra_cycles
        if cost:
            self._charge(data, cost)

    def exit(self, data: KtauTaskData, point: InstrumentationPoint,
             at_cycles: Optional[int] = None) -> None:
        """Entry/exit macro: exit side."""
        state = self._firing_state(point, data)
        if state == 0:
            return
        if state == 1:
            self._charge(data, self.overhead.disabled_check_cycles)
            return
        event_id = point.event_id
        if event_id is None:
            # Exit without any prior entry firing (e.g. enabled mid-region).
            data.unmatched_exits += 1
            if self.strict:
                raise InstrumentationImbalanceError(
                    f"exit for '{point.name}' in task {data.pid} "
                    f"({data.comm}) but that point never fired an entry")
            return
        if not data.stack or data.stack[-1].event_id != event_id:
            # Mid-region enable/disable can unbalance the stack; KTAU guards
            # with depth checks and drops the sample.
            data.unmatched_exits += 1
            if self.strict:
                if data.stack:
                    innermost = self.registry.name_of(data.stack[-1].event_id)
                    detail = (f"innermost open entry is '{innermost}' "
                              f"(depth {len(data.stack)})")
                else:
                    detail = "the activation stack is empty"
                raise InstrumentationImbalanceError(
                    f"unmatched exit for '{point.name}' in task {data.pid} "
                    f"({data.comm}): {detail}")
            return
        frame = data.stack.pop()
        now = self.clock.read() if at_cycles is None else at_cycles
        incl = now - frame.entry_cycles
        excl = incl - frame.child_cycles
        if excl < 0:
            excl = 0
        perf = data.profile.get(event_id)  # inlined data.perf()
        if perf is None:
            perf = PerfData()
            data.profile[event_id] = perf
        perf.count += 1
        remaining = data.active_counts.get(event_id, 1) - 1
        data.active_counts[event_id] = remaining
        if remaining == 0:
            perf.incl_cycles += incl
        perf.excl_cycles += excl
        if data.stack:
            data.stack[-1].child_cycles += incl
        if self.build.merge_context and frame.user_ctx is not None:
            key = (frame.user_ctx, event_id)
            pair = data.context_pairs.get(key)
            if pair is None:
                data.context_pairs[key] = [1, excl]
            else:
                pair[0] += 1
                pair[1] += excl
        if self.build.counters and data.counter_source is not None \
                and frame.entry_pmc is not None:
            pmc = data.counter_source()
            base = frame.entry_pmc
            stats = data.counter_profile.get(event_id)
            if stats is None:
                data.counter_profile[event_id] = [
                    1, pmc[0] - base[0], pmc[1] - base[1], pmc[2] - base[2],
                    pmc[3] - base[3], pmc[4] - base[4]]
            else:
                stats[0] += 1
                stats[1] += pmc[0] - base[0]
                stats[2] += pmc[1] - base[1]
                stats[3] += pmc[2] - base[2]
                stats[4] += pmc[3] - base[3]
                stats[5] += pmc[4] - base[4]
            self._counter_samples += 1
        if self.build.callgraph:
            if data.stack:
                parent = f"K:{self.registry.name_of(data.stack[-1].event_id)}"
            elif frame.user_ctx is not None:
                parent = f"U:{frame.user_ctx}"
            else:
                parent = ""
            edge = data.callgraph.get((parent, event_id))
            if edge is None:
                data.callgraph[(parent, event_id)] = [1, incl]
            else:
                edge[0] += 1
                edge[1] += incl
        cost = 0 if self._no_overhead else self.overhead.stop_cycles()
        if data.trace is not None:
            data.trace.append(TraceRecord(now, event_id, TraceKind.EXIT))
            cost += self.overhead.trace_extra_cycles
        if cost:
            self._charge(data, cost)

    def atomic(self, data: KtauTaskData, point: InstrumentationPoint, value: int,
               at_cycles: Optional[int] = None) -> None:
        """Atomic-event macro: a stand-alone event carrying a value."""
        if point.kind != PointKind.ATOMIC:
            raise ValueError(f"{point.name} is not an atomic point")
        state = self._firing_state(point, data)
        if state == 0:
            return
        if state == 1:
            self._charge(data, self.overhead.disabled_check_cycles)
            return
        event_id = point.event_id
        if event_id is None:
            event_id = self.registry.bind(point)
        stats = data.atomic.get(event_id)
        if stats is None:
            stats = AtomicData()
            data.atomic[event_id] = stats
        stats.record(value)
        cost = 0 if self._no_overhead else self.overhead.atomic_cycles()
        if data.trace is not None:
            stamp = self.clock.read() if at_cycles is None else at_cycles
            data.trace.append(TraceRecord(stamp, event_id, TraceKind.ATOMIC, value))
            cost += self.overhead.trace_extra_cycles
        if cost:
            self._charge(data, cost)

    @contextmanager
    def span(self, data: KtauTaskData, point: InstrumentationPoint) -> Iterator[None]:
        """Entry/exit pair as a context manager, usable across generator yields."""
        self.entry(data, point)
        try:
            yield
        finally:
            self.exit(data, point)

    # ------------------------------------------------------------------
    # Harness observability (repro.obs)
    # ------------------------------------------------------------------
    def _publish_obs(self, data: Optional[KtauTaskData] = None) -> None:
        """Publish firing-cache deltas (and, at a task exit, that task's
        trace-buffer totals) into the harness metrics registry.

        Called only when collection is on; daemons that never exit are
        captured by the snapshot-time delta publish instead.
        """
        from repro.obs.metrics import REGISTRY
        base = self._obs_base
        firings = self._firings
        misses = self._cache_misses
        invalidations = self._cache_invalidations
        counter_samples = self._counter_samples
        REGISTRY.counter("ktau.firings").inc(firings - base[0])
        REGISTRY.counter("ktau.firing_cache_misses").inc(misses - base[1])
        REGISTRY.counter("ktau.firing_cache_hits").inc(
            (firings - misses) - (base[0] - base[1]))
        REGISTRY.counter("ktau.cache_invalidations").inc(
            invalidations - base[2])
        REGISTRY.counter("ktau.counter_samples").inc(
            counter_samples - base[3])
        self._obs_base = [firings, misses, invalidations, counter_samples]
        if data is not None:
            REGISTRY.counter("ktau.tasks_exited").inc()
            REGISTRY.counter("ktau.unmatched_exits").inc(data.unmatched_exits)
            trace = data.trace
            if trace is not None:
                REGISTRY.counter("tracebuf.records_written").inc(
                    trace.total_records)
                REGISTRY.counter("tracebuf.records_lost").inc(
                    trace.lost_count)
                REGISTRY.counter("tracebuf.batched_flushes").inc(
                    trace.flush_count)

    # ------------------------------------------------------------------
    # Snapshot access (backing for /proc/ktau reads)
    # ------------------------------------------------------------------
    def snapshot(self, pids: Optional[list[int]] = None,
                 include_zombies: bool = False) -> dict[int, KtauTaskData]:
        """Live references to task data for the requested scope.

        ``/proc/ktau`` serialises from these references at read time; there
        is no kernel-side session state (reads can race with updates, as in
        the real implementation).
        """
        if _obs.metrics_on:
            self._publish_obs()
        pool: dict[int, KtauTaskData] = dict(self.tasks)
        if include_zombies:
            for pid, data in self.zombies.items():
                pool.setdefault(pid, data)
        if pids is None:
            return pool
        return {pid: pool[pid] for pid in pids if pid in pool}
