"""Binary wire format for /proc/ktau data.

libKtau's documented responsibilities include "data conversion (ASCII
to/from binary)"; the kernel side hands out packed binary buffers and the
user library decodes them.  We reproduce that split: :func:`pack_profiles`
runs on the kernel side of the proc interface, :func:`unpack_profiles` in
libKtau.  The format embeds the node's event-mapping table so that decoded
profiles are keyed by event *name* (numeric IDs are node-local and bind in
first-arrival order).

Layout (little-endian)::

    header:  4s magic 'KTAU' | H version | H flags | I ntasks | I nmap
    map[nmap]:   I id | B len | name | B len | group
    task[ntasks]:
        I pid | B len | comm
        I nperf   | nperf   * (I id | Q count | Q incl | Q excl)
        I natomic | natomic * (I id | Q count | Q sum | Q min | Q max)
        I nctx    | nctx    * (B len | ctx | I id | Q count | Q excl)
        I ncnt    | ncnt    * (I id | Q count | Q cycles | Q insn
                               | Q l2miss | Q minflt | Q majflt)
        I nedge   | nedge   * (B len | parent | I id | Q count | Q incl)
        B has_pmc | has_pmc * (Q cycles | Q insn | Q l2miss
                               | Q minflt | Q majflt)

(The counter and call-graph sections are the §6 extensions; they are
always present and simply empty when the corresponding build options
are off.  Version 3 widened the counter entries from (insn, l2) to the
full five-dimensional PMC vector and appended the per-task lifetime PMC
block — the task's raw counter register values at pack time, which let
user-space compute rates over *all* executed cycles, not only the
kernel spans bracketed by instrumentation.  Header flag bit 0x1 records
whether any task in the snapshot carries counters.)

Trace buffers use a separate, simpler layout::

    4s magic 'KTRC' | H version | I pid | Q lost | I nrec
    rec[nrec]: Q cycles | I id | B kind | Q value
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.measurement import KtauTaskData
from repro.core.registry import EventRegistry
from repro.core.tracebuf import TraceKind, TraceRecord

MAGIC_PROFILE = b"KTAU"
MAGIC_TRACE = b"KTRC"
VERSION = 3

#: Header flag bit: at least one task in this snapshot has PMC data.
FLAG_COUNTERS = 0x1

_HDR = struct.Struct("<4sHHII")
_MAP_ENTRY = struct.Struct("<I")
_PERF_ENTRY = struct.Struct("<IQQQ")
_ATOMIC_ENTRY = struct.Struct("<IQQQQ")
_CTX_FIXED = struct.Struct("<IQQ")
_COUNTER_ENTRY = struct.Struct("<IQQQQQQ")
_PMC_BLOCK = struct.Struct("<QQQQQ")
_EDGE_FIXED = struct.Struct("<IQQ")
_TASK_FIXED = struct.Struct("<I")
_U32 = struct.Struct("<I")
_TRACE_HDR = struct.Struct("<4sHIQI")
_TRACE_REC = struct.Struct("<QIBQ")


class WireError(ValueError):
    """Raised by unpackers on malformed or truncated buffers."""


def _pack_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    if len(raw) > 255:
        raw = raw[:255]
    out.append(len(raw))
    out.extend(raw)


def _unpack_str(buf: bytes, off: int) -> tuple[str, int]:
    if off >= len(buf):
        raise WireError("truncated string length")
    n = buf[off]
    off += 1
    if off + n > len(buf):
        raise WireError("truncated string body")
    return buf[off:off + n].decode("utf-8"), off + n


# ---------------------------------------------------------------------------
# Decoded (user-space) representations
# ---------------------------------------------------------------------------
@dataclass
class TaskProfileDump:
    """A decoded per-task profile, keyed by event name."""

    pid: int
    comm: str
    #: event name -> (count, inclusive cycles, exclusive cycles)
    perf: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    #: event name -> (count, sum, min, max)
    atomic: dict[str, tuple[int, int, int, int]] = field(default_factory=dict)
    #: (user context, event name) -> (count, exclusive cycles)
    context_pairs: dict[tuple[str, str], tuple[int, int]] = field(default_factory=dict)
    #: event name -> group name (from the embedded mapping table)
    groups: dict[str, str] = field(default_factory=dict)
    #: event name -> (count, inclusive cycles, instructions, L2 misses,
    #: minor faults, major faults) — all inclusive deltas
    counters: dict[str, tuple[int, int, int, int, int, int]] = field(default_factory=dict)
    #: (parent key, event name) -> (count, inclusive cycles); parent key
    #: is "K:<event>", "U:<routine>", or "" for a root activation
    edges: dict[tuple[str, str], tuple[int, int]] = field(default_factory=dict)
    #: lifetime PMC totals at pack time — (cycles, instructions,
    #: L2 misses, minor faults, major faults); None when the counters
    #: build option is off for this task
    pmc: tuple[int, int, int, int, int] | None = None


@dataclass
class TraceDump:
    """A decoded per-task trace buffer."""

    pid: int
    lost: int
    #: (cycles, event name, kind, value)
    records: list[tuple[int, str, TraceKind, int]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Kernel-side packing
# ---------------------------------------------------------------------------
def pack_profiles(tasks: dict[int, KtauTaskData], registry: EventRegistry) -> bytes:
    """Serialise a profile snapshot plus the event-mapping table."""
    out = bytearray()
    mapping = registry.mapping_table()
    flags = 0
    for data in tasks.values():
        if data.counter_source is not None:
            flags |= FLAG_COUNTERS
            break
    out.extend(_HDR.pack(MAGIC_PROFILE, VERSION, flags, len(tasks), len(mapping)))
    for event_id, name, group in mapping:
        out.extend(_MAP_ENTRY.pack(event_id))
        _pack_str(out, name)
        _pack_str(out, group)
    for pid in sorted(tasks):
        data = tasks[pid]
        out.extend(_TASK_FIXED.pack(pid))
        _pack_str(out, data.comm)
        out.extend(_U32.pack(len(data.profile)))
        for event_id in sorted(data.profile):
            perf = data.profile[event_id]
            out.extend(_PERF_ENTRY.pack(event_id, perf.count, perf.incl_cycles,
                                        perf.excl_cycles))
        out.extend(_U32.pack(len(data.atomic)))
        for event_id in sorted(data.atomic):
            stats = data.atomic[event_id]
            out.extend(_ATOMIC_ENTRY.pack(event_id, *stats.as_tuple()))
        out.extend(_U32.pack(len(data.context_pairs)))
        for (ctx, event_id) in sorted(data.context_pairs):
            count, excl = data.context_pairs[(ctx, event_id)]
            _pack_str(out, ctx)
            out.extend(_CTX_FIXED.pack(event_id, count, excl))
        out.extend(_U32.pack(len(data.counter_profile)))
        for event_id in sorted(data.counter_profile):
            count, cycles, insn, l2, minflt, majflt = data.counter_profile[event_id]
            out.extend(_COUNTER_ENTRY.pack(event_id, count, cycles, insn, l2,
                                           minflt, majflt))
        out.extend(_U32.pack(len(data.callgraph)))
        for (parent, event_id) in sorted(data.callgraph):
            count, incl = data.callgraph[(parent, event_id)]
            _pack_str(out, parent)
            out.extend(_EDGE_FIXED.pack(event_id, count, incl))
        if data.counter_source is not None:
            out.append(1)
            out.extend(_PMC_BLOCK.pack(*data.counter_source()))
        else:
            out.append(0)
    return bytes(out)


def pack_trace(pid: int, lost: int, records: list[TraceRecord],
               registry: EventRegistry) -> bytes:
    """Serialise a drained trace buffer (mapping shipped as a side table).

    The trace format references events by ID; a compact mapping table is
    appended after the records (id/name pairs for the IDs actually used).
    """
    out = bytearray()
    out.extend(_TRACE_HDR.pack(MAGIC_TRACE, VERSION, pid, lost, len(records)))
    used: set[int] = set()
    for rec in records:
        out.extend(_TRACE_REC.pack(rec.cycles, rec.event_id, int(rec.kind), rec.value))
        used.add(rec.event_id)
    out.extend(_U32.pack(len(used)))
    for event_id in sorted(used):
        out.extend(_MAP_ENTRY.pack(event_id))
        _pack_str(out, registry.name_of(event_id))
    return bytes(out)


# ---------------------------------------------------------------------------
# User-side unpacking (libKtau)
# ---------------------------------------------------------------------------
def unpack_profiles(buf: bytes) -> dict[int, TaskProfileDump]:
    """Decode a profile buffer into name-keyed per-task dumps."""
    if len(buf) < _HDR.size:
        raise WireError("buffer shorter than header")
    magic, version, _flags, ntasks, nmap = _HDR.unpack_from(buf, 0)
    if magic != MAGIC_PROFILE:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported version {version}")
    off = _HDR.size
    names: dict[int, str] = {}
    groups: dict[int, str] = {}
    for _ in range(nmap):
        if off + _MAP_ENTRY.size > len(buf):
            raise WireError("truncated mapping table")
        (event_id,) = _MAP_ENTRY.unpack_from(buf, off)
        off += _MAP_ENTRY.size
        name, off = _unpack_str(buf, off)
        group, off = _unpack_str(buf, off)
        names[event_id] = name
        groups[event_id] = group

    def name_of(event_id: int) -> str:
        try:
            return names[event_id]
        except KeyError:
            raise WireError(f"event id {event_id} missing from mapping table") from None

    dumps: dict[int, TaskProfileDump] = {}
    for _ in range(ntasks):
        if off + _TASK_FIXED.size > len(buf):
            raise WireError("truncated task header")
        (pid,) = _TASK_FIXED.unpack_from(buf, off)
        off += _TASK_FIXED.size
        comm, off = _unpack_str(buf, off)
        dump = TaskProfileDump(pid=pid, comm=comm)
        if off + _U32.size > len(buf):
            raise WireError("truncated perf count")
        (nperf,) = _U32.unpack_from(buf, off)
        off += _U32.size
        for _ in range(nperf):
            if off + _PERF_ENTRY.size > len(buf):
                raise WireError("truncated perf entry")
            event_id, count, incl, excl = _PERF_ENTRY.unpack_from(buf, off)
            off += _PERF_ENTRY.size
            name = name_of(event_id)
            dump.perf[name] = (count, incl, excl)
            dump.groups[name] = groups.get(event_id, "")
        if off + _U32.size > len(buf):
            raise WireError("truncated atomic count")
        (natomic,) = _U32.unpack_from(buf, off)
        off += _U32.size
        for _ in range(natomic):
            if off + _ATOMIC_ENTRY.size > len(buf):
                raise WireError("truncated atomic entry")
            event_id, count, total, mn, mx = _ATOMIC_ENTRY.unpack_from(buf, off)
            off += _ATOMIC_ENTRY.size
            name = name_of(event_id)
            dump.atomic[name] = (count, total, mn, mx)
            dump.groups[name] = groups.get(event_id, "")
        if off + _U32.size > len(buf):
            raise WireError("truncated context count")
        (nctx,) = _U32.unpack_from(buf, off)
        off += _U32.size
        for _ in range(nctx):
            ctx, off = _unpack_str(buf, off)
            if off + _CTX_FIXED.size > len(buf):
                raise WireError("truncated context entry")
            event_id, count, excl = _CTX_FIXED.unpack_from(buf, off)
            off += _CTX_FIXED.size
            dump.context_pairs[(ctx, name_of(event_id))] = (count, excl)
        if off + _U32.size > len(buf):
            raise WireError("truncated counter count")
        (ncnt,) = _U32.unpack_from(buf, off)
        off += _U32.size
        for _ in range(ncnt):
            if off + _COUNTER_ENTRY.size > len(buf):
                raise WireError("truncated counter entry")
            entry = _COUNTER_ENTRY.unpack_from(buf, off)
            off += _COUNTER_ENTRY.size
            dump.counters[name_of(entry[0])] = entry[1:]
        if off + _U32.size > len(buf):
            raise WireError("truncated edge count")
        (nedge,) = _U32.unpack_from(buf, off)
        off += _U32.size
        for _ in range(nedge):
            parent, off = _unpack_str(buf, off)
            if off + _EDGE_FIXED.size > len(buf):
                raise WireError("truncated edge entry")
            event_id, count, incl = _EDGE_FIXED.unpack_from(buf, off)
            off += _EDGE_FIXED.size
            dump.edges[(parent, name_of(event_id))] = (count, incl)
        if off >= len(buf):
            raise WireError("truncated pmc presence byte")
        has_pmc = buf[off]
        off += 1
        if has_pmc:
            if off + _PMC_BLOCK.size > len(buf):
                raise WireError("truncated pmc block")
            dump.pmc = _PMC_BLOCK.unpack_from(buf, off)
            off += _PMC_BLOCK.size
        dumps[pid] = dump
    return dumps


def unpack_trace(buf: bytes) -> TraceDump:
    """Decode a trace buffer."""
    if len(buf) < _TRACE_HDR.size:
        raise WireError("trace buffer shorter than header")
    magic, version, pid, lost, nrec = _TRACE_HDR.unpack_from(buf, 0)
    if magic != MAGIC_TRACE:
        raise WireError(f"bad trace magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported trace version {version}")
    off = _TRACE_HDR.size
    raw: list[tuple[int, int, int, int]] = []
    for _ in range(nrec):
        if off + _TRACE_REC.size > len(buf):
            raise WireError("truncated trace record")
        raw.append(_TRACE_REC.unpack_from(buf, off))
        off += _TRACE_REC.size
    if off + _U32.size > len(buf):
        raise WireError("truncated trace mapping count")
    (nmap,) = _U32.unpack_from(buf, off)
    off += _U32.size
    names: dict[int, str] = {}
    for _ in range(nmap):
        if off + _MAP_ENTRY.size > len(buf):
            raise WireError("truncated trace mapping entry")
        (event_id,) = _MAP_ENTRY.unpack_from(buf, off)
        off += _MAP_ENTRY.size
        name, off = _unpack_str(buf, off)
        names[event_id] = name
    dump = TraceDump(pid=pid, lost=lost)
    for cycles, event_id, kind, value in raw:
        dump.records.append((cycles, names[event_id], TraceKind(kind), value))
    return dump
