"""Shared retry policy for the session-less /proc/ktau protocol.

The /proc/ktau interface is deliberately stateless: a profile read is a
``size`` call followed by a ``read`` call into a caller-allocated buffer,
and the profile may grow in between, so the read can come back truncated.
Every client used to carry its own ad-hoc loop for that race; this module
is the one shared implementation — a bounded grow-and-retry for
non-destructive reads (:func:`grow_and_retry`) and a single sized read
for destructive drains (:func:`sized_read`), both governed by an explicit
:class:`RetryPolicy` and failing loudly with :class:`RetryExhaustedError`
when the bound is hit.

:class:`RetryPolicy` also carries the *simulated-time* backoff used by
in-simulation clients (KTAUD) when the procfs layer reports a transient
fault: those clients sleep ``backoff_ns * attempt`` between attempts, so
degradation under fault injection costs virtual time on the faulted node
the way a real collector's retry loop costs wall time.  The policy is
re-exported as :mod:`repro.faults.retry`, the fault subsystem's public
home for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds for a retry loop.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included) before
        :class:`RetryExhaustedError` is raised.
    backoff_ns:
        Simulated-time backoff between attempts for coroutine clients
        (attempt ``n`` sleeps ``n * backoff_ns``).  Host-side callers of
        :func:`grow_and_retry` ignore it — the size/read race involves
        no waiting, only a larger buffer.
    """

    max_attempts: int = 8
    backoff_ns: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_ns < 0:
            raise ValueError("backoff_ns must be >= 0")

    def backoff_for(self, attempt: int) -> int:
        """Simulated-time backoff before retry number ``attempt`` (1-based)."""
        return attempt * self.backoff_ns


class RetryExhaustedError(RuntimeError):
    """A bounded retry loop hit its attempt limit without succeeding."""

    def __init__(self, what: str, attempts: int, last_size: int = 0):
        super().__init__(
            f"{what}: retry limit hit after {attempts} attempts"
            + (f" (last full size {last_size} bytes)" if last_size else ""))
        self.what = what
        self.attempts = attempts
        self.last_size = last_size


#: Default policy for the profile size/read race — the bound the paper's
#: session-less protocol discussion implies (generous: the profile grows
#: only when tasks or events appear between the two calls).
DEFAULT_POLICY = RetryPolicy(max_attempts=8)


def grow_and_retry(size_fn: Callable[[], int],
                   read_fn: Callable[[int], tuple[bytes, int]],
                   policy: RetryPolicy = DEFAULT_POLICY,
                   what: str = "ktau profile read") -> bytes:
    """Run the size-then-read protocol, growing the buffer on truncation.

    ``size_fn()`` returns the advisory size; ``read_fn(bufsize)`` returns
    ``(data, full_size)`` where ``len(data) < full_size`` signals a
    truncated read.  Each truncation retries with the reported full size,
    up to ``policy.max_attempts`` reads; exhaustion raises
    :class:`RetryExhaustedError` instead of returning short data.
    """
    bufsize = size_fn()
    full = bufsize
    for _ in range(policy.max_attempts):
        data, full = read_fn(bufsize)
        if len(data) >= full:
            return data
        bufsize = full  # grew between calls; retry with the larger size
    raise RetryExhaustedError(what, policy.max_attempts, last_size=full)


def sized_read(size_fn: Callable[[], int],
               read_fn: Callable[[int], tuple[bytes, int]]
               ) -> tuple[bytes, int]:
    """One sized read for destructive drains (the trace path).

    A trace drain consumes the buffer, so there is nothing to retry: the
    caller sizes the buffer, reads once, and any overflow is genuinely
    lost.  Returns ``(data, full_size)``; ``len(data) < full_size`` means
    records beyond the buffer were dropped and the caller should surface
    the loss rather than retry.
    """
    bufsize = size_fn()
    return read_fn(bufsize)
