"""Compile-time, boot-time, and runtime instrumentation control.

KTAU instrumentation is compiled into the kernel; compile-time options
(``make menuconfig`` in the paper) select which *groups* of points are
built in and whether profiling, tracing, or both are produced.  Boot-time
kernel options and runtime control (through libKtau) can then enable or
disable built-in groups by setting flags that instrumentation checks on
every firing.

The perturbation study (Table 3) is expressed entirely in these terms:

* ``Base``        — vanilla kernel, nothing compiled in.
* ``Ktau Off``    — everything compiled in, all groups disabled at boot.
* ``ProfAll``     — everything compiled in and enabled.
* ``ProfSched``   — everything compiled in, only the scheduler group on.
* ``ProfAll+Tau`` — ProfAll plus user-level TAU instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.points import ALL_GROUPS, Group


@dataclass(frozen=True)
class KtauBuildConfig:
    """Compile-time KTAU configuration for one kernel build.

    Attributes
    ----------
    compiled_groups:
        Groups whose instrumentation points exist in the built kernel.
        Points in other groups cost *nothing* (they are not in the binary).
    profiling:
        Build the profiling data path (per-task counters).
    tracing:
        Build the tracing data path (per-task circular buffers).
    trace_buffer_entries:
        Entries per per-task circular trace buffer.
    merge_context:
        Track the user-level (TAU) context active when kernel events fire,
        enabling the merged user/kernel views (Figures 2-D, 4, 9).
    counters:
        Also snapshot hardware performance counters (instructions, L2
        misses) at event boundaries — the paper's §6 "performance counter
        access to KTAU" extension.
    callgraph:
        Record parent→child activation edges, enabling merged
        user/kernel call-graph profiles — another §6 extension.
    """

    compiled_groups: frozenset[Group] = field(default_factory=lambda: frozenset(ALL_GROUPS))
    profiling: bool = True
    tracing: bool = False
    trace_buffer_entries: int = 4096
    merge_context: bool = True
    counters: bool = False
    callgraph: bool = False

    @staticmethod
    def vanilla() -> "KtauBuildConfig":
        """A kernel with no KTAU patch at all (perturbation ``Base``)."""
        return KtauBuildConfig(compiled_groups=frozenset(), profiling=False,
                               tracing=False, merge_context=False)

    @staticmethod
    def full(tracing: bool = False, counters: bool = False) -> "KtauBuildConfig":
        """All groups compiled in."""
        return KtauBuildConfig(tracing=tracing, counters=counters)

    def with_tracing(self, entries: int = 4096) -> "KtauBuildConfig":
        return replace(self, tracing=True, trace_buffer_entries=entries)

    @property
    def is_patched(self) -> bool:
        return bool(self.compiled_groups)


class KtauRuntimeControl:
    """Boot-time/runtime enable flags checked by every instrumentation firing.

    Mutable at runtime through libKtau's kernel-control calls; this is the
    mechanism behind the paper's conclusion that a viable kernel-monitoring
    strategy is "instrument the kernel source directly, leave the
    instrumentation compiled in, and implement dynamic measurement control".

    Two granularities exist:

    * **groups** — the paper's released mechanism (compile-time groups
      that boot options can disable);
    * **individual points** — the §6 future-work extension ("mechanisms
      to dynamically disable/enable instrumentation points without
      requiring rebooting or recompilation"): a per-point deny set
      consulted after the group check, so a single hot instrumentation
      site can be silenced at runtime.
    """

    def __init__(self, build: KtauBuildConfig, enabled_groups: frozenset[Group] | None = None):
        self.build = build
        if enabled_groups is None:
            enabled_groups = build.compiled_groups
        # Cannot enable what is not compiled in.
        self._enabled: set[Group] = set(enabled_groups) & set(build.compiled_groups)
        self._disabled_points: set[str] = set()
        #: bumped on every state change so hot paths (the measurement
        #: system's per-point firing-state cache) can revalidate cheaply
        self.version = 0

    # -- queries (the hot path) ------------------------------------------
    def group_enabled(self, group: Group) -> bool:
        return group in self._enabled

    def group_compiled(self, group: Group) -> bool:
        return group in self.build.compiled_groups

    def point_enabled(self, name: str) -> bool:
        return name not in self._disabled_points

    @property
    def enabled_groups(self) -> frozenset[Group]:
        return frozenset(self._enabled)

    @property
    def disabled_points(self) -> frozenset[str]:
        return frozenset(self._disabled_points)

    # -- runtime control (libKtau `ktau_set_state`) ------------------------
    def enable(self, *groups: Group) -> None:
        for g in groups:
            if g not in self.build.compiled_groups:
                raise ValueError(f"group {g} not compiled into this kernel")
            self._enabled.add(g)
        self.version += 1

    def disable(self, *groups: Group) -> None:
        for g in groups:
            self._enabled.discard(g)
        self.version += 1

    def disable_all(self) -> None:
        self._enabled.clear()
        self.version += 1

    def enable_all(self) -> None:
        self._enabled = set(self.build.compiled_groups)
        self.version += 1

    def disable_points(self, *names: str) -> None:
        """Silence individual instrumentation points at runtime."""
        self._disabled_points.update(names)
        self.version += 1

    def enable_points(self, *names: str) -> None:
        self._disabled_points.difference_update(names)
        self.version += 1

    # -- boot-time kernel options ------------------------------------------
    @classmethod
    def from_boot_cmdline(cls, build: KtauBuildConfig,
                          cmdline: str) -> "KtauRuntimeControl":
        """Parse the KTAU boot options from a kernel command line.

        Supported (mirroring the paper's boot-time group control):

        * ``ktau=off``            — boot with everything disabled
        * ``ktau.groups=a,b,...`` — boot with only the named groups on
        * ``ktau.nopoints=x,y``   — boot with named points silenced
        """
        enabled: frozenset[Group] | None = None
        disabled_points: list[str] = []
        for token in cmdline.split():
            if token == "ktau=off":
                enabled = frozenset()
            elif token.startswith("ktau.groups="):
                names = [n for n in token.split("=", 1)[1].split(",") if n]
                enabled = frozenset(Group(n) for n in names)
            elif token.startswith("ktau.nopoints="):
                disabled_points = [n for n in token.split("=", 1)[1].split(",") if n]
        control = cls(build, enabled_groups=enabled)
        if disabled_points:
            control.disable_points(*disabled_points)
        return control
