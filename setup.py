"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot perform a PEP 660 editable build; ``python setup.py develop`` (which
pip falls back to through this shim) installs the same editable package.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
