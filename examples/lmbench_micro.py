#!/usr/bin/env python
"""LMBENCH-style micro-benchmarks on the simulated kernel (§5).

The paper exercises LMBENCH as a well-understood, controlled kernel
workload on its KTAU-patched testbeds.  This example runs the three
probes — null-syscall latency, context-switch latency, and TCP stream
bandwidth — and then shows what KTAU recorded about each.

Run:  python examples/lmbench_micro.py
"""

from repro.cluster.machines import make_chiba, make_neutron
from repro.core.libktau import LibKtau
from repro.sim.units import SEC
from repro.workloads.lmbench import bw_tcp, lat_ctx, lat_syscall


def main() -> None:
    print("=== lat_syscall: null system call (getppid) ===")
    cluster = make_neutron(seed=5)
    kernel = cluster.nodes[0].kernel
    lat = lat_syscall(kernel, iterations=2000)
    cluster.engine.run(until=30 * SEC)
    print(f"  {lat.iterations} calls, {lat.per_op_us:.2f} us/call\n")

    print("=== lat_ctx: pipe ping-pong context switch ===")
    cluster = make_neutron(seed=6)
    kernel = cluster.nodes[0].kernel
    ctxres = lat_ctx(kernel, rounds=1000)
    cluster.engine.run(until=30 * SEC)
    print(f"  {ctxres.iterations} switches, {ctxres.per_op_us:.2f} us/switch")

    # what KTAU saw: each hop is a voluntary schedule
    lib = LibKtau(kernel.ktau_proc)
    profiles = lib.read_profiles(include_zombies=True)
    player = next(d for d in profiles.values() if d.comm == "lat_ctx.a")
    vol_count = player.perf["schedule_vol"][0]
    print(f"  KTAU: lat_ctx.a recorded {vol_count} voluntary "
          f"context switches\n")

    print("=== bw_tcp: stream bandwidth across two Chiba nodes ===")
    cluster = make_chiba(nnodes=2, seed=7)
    k1, k2 = cluster.nodes[0].kernel, cluster.nodes[1].kernel
    bw = bw_tcp(k1, k2, cluster.network, nbytes=4 * 1024 * 1024)
    cluster.engine.run(until=60 * SEC)
    print(f"  {bw.nbytes // (1024*1024)} MiB in {bw.elapsed_ns/1e9:.3f}s "
          f"= {bw.mb_per_s:.2f} MiB/s (100 Mbit/s wire)")
    lib = LibKtau(k2.ktau_proc)
    profiles = lib.read_profiles(include_zombies=True)
    rx = next(d for d in profiles.values() if d.comm == "bw_tcp.rx")
    print(f"  KTAU on the receiver: sys_readv x{rx.perf['sys_readv'][0]}, "
          f"rx packets visible via the swapper's softirq context")


if __name__ == "__main__":
    main()
