#!/usr/bin/env python
"""Online monitoring with KTAUD (the daemon client).

A closed-source application — one we cannot TAU-instrument — misbehaves
periodically.  KTAUD extracts kernel profiles for *all* processes every
250 ms, giving an online time series of each process's kernel activity
without touching the application.  The price (which the paper is explicit
about) is the daemon's own perturbation, also shown below.

Run:  python examples/ktaud_monitoring.py
"""

from repro.core.clients.ktaud import Ktaud
from repro.kernel.kernel import Kernel
from repro.kernel.params import KernelParams
from repro.sim.engine import Engine
from repro.sim.rng import RngHub
from repro.sim.units import MSEC, SEC


def closed_source_app(ctx):
    """Mostly sleeps; every fourth period it hammers the network-less
    syscall path (a bursty phase KTAUD should catch online)."""
    for period in range(16):
        if period % 4 == 3:
            for _ in range(200):
                yield from ctx.syscall("sys_getppid")
            yield from ctx.compute(60 * MSEC)
        else:
            yield from ctx.compute(5 * MSEC)
            yield from ctx.sleep(120 * MSEC)


def main() -> None:
    engine = Engine()
    kernel = Kernel(engine, KernelParams(), "prod-node", RngHub(3))

    app = kernel.spawn(closed_source_app, "blackbox")
    ktaud = Ktaud(kernel, period_ns=150 * MSEC)
    ktaud.start()

    # run until the black box exits (plus one final snapshot window)
    app.on_exit(lambda _t: engine.schedule(200 * MSEC, engine.stop))
    engine.run(until=10 * SEC)
    ktaud.stop()

    print(f"KTAUD took {len(ktaud.snapshots)} snapshots.\n")
    print("online syscall-count series for the black-box app:")
    series = []
    for snap in ktaud.snapshots:
        dump = snap.profiles.get(app.pid)
        count = dump.perf.get("sys_getppid", (0, 0, 0))[0] if dump else 0
        series.append((snap.time_ns, count))
    previous = 0
    for t, count in series:
        if count == 0 and previous > 0:
            print(f"  t={t/1e9:5.2f}s  (black box exited; gone from the "
                  f"live view)")
            break
        delta = count - previous
        previous = count
        bar = "#" * min(60, delta // 8)
        print(f"  t={t/1e9:5.2f}s  sys_getppid total={count:5d}  "
              f"delta={delta:4d} {bar}")
    print("\nthe bursty phases are visible online, without instrumenting "
          "the application.")

    print(f"\nKTAUD's own cost on this node: "
          f"{(ktaud.task.utime_ns + ktaud.task.stime_ns)/1e6:.2f} ms CPU "
          f"over {engine.now/1e9:.1f}s — the perturbation a daemon-based "
          f"model pays (§2).")


if __name__ == "__main__":
    main()
