#!/usr/bin/env python
"""A compact perturbation study (§5.3 / Tables 3 and 4).

How much does KTAU's measurement itself cost?  Run the same LU job under
five instrumentation configurations — vanilla kernel, compiled-but-
disabled, fully enabled, scheduler-only, and fully enabled plus
user-level TAU — and compare execution times.  Then sample the direct
per-operation costs behind the perturbation (Table 4).

Run:  python examples/perturbation_study.py      (~1 min)
"""

from repro.experiments import table3, table4


def main() -> None:
    print("running 5 configurations x 2 seeds of 16-rank LU ...\n")
    rows = table3.build(nranks=16, seeds=(1, 2))
    print(table3.render(rows))
    by = {r.config: r for r in rows}
    print("headlines (paper's findings in parentheses):")
    print(f"  Ktau Off:    {by['Ktau Off'].pct_avg_slow:5.2f}% "
          "(no statistically significant slowdown)")
    print(f"  ProfAll:     {by['ProfAll'].pct_avg_slow:5.2f}% (~2.3%)")
    print(f"  ProfSched:   {by['ProfSched'].pct_avg_slow:5.2f}% (~0.07%)")
    print(f"  ProfAll+Tau: {by['ProfAll+Tau'].pct_avg_slow:5.2f}% (~2.8%)")
    print("\nconclusion (paper §6): compile the instrumentation in, leave "
          "it in,\nand control it at runtime — disabled instrumentation is "
          "effectively free.\n")

    print(table4.render(table4.build()))


if __name__ == "__main__":
    main()
