#!/usr/bin/env python
"""The §6 extensions in one run: merged call graphs, phase profiling,
performance counters, dynamic point control, and trace export.

The paper's future-work list asks for: performance counter access,
merged user-kernel call-graph profiles, phase-based profiling, dynamic
per-point measurement control, and richer trace integration.  All five
are implemented; this example exercises them on one small MPI job.

Run:  python examples/merged_callgraph.py
"""

import pathlib

from repro.analysis.callgraph import build_merged_callgraph, render_callgraph
from repro.analysis.export import to_chrome_trace, validate_chrome_trace
from repro.analysis.tracemerge import merge_traces
from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.core.config import KtauBuildConfig
from repro.core.libktau import LibKtau
from repro.sim.units import MSEC
from repro.tau.phases import PhaseTracker
from repro.workloads.lu import LuParams

trackers = []


def phased_app(params):
    """An LU-like mini-app with explicit phases."""
    from contextlib import nullcontext

    def app(ctx, mpi):
        tau = ctx.task.tau
        timer = (tau.timer if tau else lambda n: nullcontext())
        phases = PhaseTracker(ctx)
        trackers.append((mpi.rank, phases))

        yield from phases.begin("setup")
        with timer("init_grid"):
            yield from ctx.compute(6 * MSEC)
        yield from mpi.barrier()
        yield from phases.end("setup")

        yield from phases.begin("solve")
        peer = mpi.rank ^ 1
        for _ in range(3):
            with timer("rhs"):
                yield from ctx.compute(8 * MSEC)
            with timer("exchange"):
                if mpi.rank < peer:
                    yield from mpi.send(peer, params.halo_bytes)
                    yield from mpi.recv(peer, params.halo_bytes)
                else:
                    yield from mpi.recv(peer, params.halo_bytes)
                    yield from mpi.send(peer, params.halo_bytes)
        yield from phases.end("solve")

    return app


def main() -> None:
    params = LuParams(halo_bytes=16_384)
    # Build with every extension on; silence one hot point at boot.
    build = KtauBuildConfig(tracing=True, counters=True, callgraph=True)
    cluster = make_chiba(
        nnodes=2, seed=12, ktau=build,
        tweak=lambda i, p: p.with_(boot_cmdline="ktau.nopoints=dev_queue_xmit"))
    job = launch_mpi_job(cluster, 2, phased_app(params),
                         placement=block_placement(1, 2), tau_tracing=True)
    job.run()

    rank = 0
    node = job.world.rank_nodes[rank]
    task = job.world.rank_tasks[rank]
    lib = LibKtau(node.kernel.ktau_proc)
    kdump = lib.read_profiles(include_zombies=True)[task.pid]
    udump = job.profilers[rank].dump()
    hz = node.kernel.clock.hz

    print("=== merged user/kernel call graph (rank 0) ===")
    graph = build_merged_callgraph(udump, kdump)
    print(render_callgraph(graph, hz, min_cycles=int(hz * 1e-6)))

    print("=== phase-based kernel profiles ===")
    _rank, phases = trackers[0]
    print(phases.report(hz))

    print("=== performance counters per kernel event ===")
    for name, (count, insn, l2) in sorted(kdump.counters.items(),
                                          key=lambda kv: -kv[1][1])[:6]:
        print(f"  {name:<20} x{count:<4} {insn:>12} insn {l2:>8} L2 misses")

    print("\n=== dynamic point control at boot ===")
    print(f"  dev_queue_xmit events recorded: "
          f"{'dev_queue_xmit' in kdump.perf} "
          f"(silenced via ktau.nopoints=...)")
    print(f"  tcp_sendmsg events recorded:    "
          f"{'tcp_sendmsg' in kdump.perf}")

    print("\n=== trace export ===")
    merged = merge_traces(udump, lib.read_trace(task.pid))
    payload = to_chrome_trace({f"rank0@{node.name}": (merged, hz)})
    pairs, instants = validate_chrome_trace(payload)
    out = pathlib.Path("merged_trace.json")
    out.write_text(payload)
    print(f"  wrote {out} ({pairs} regions, {instants} instants) — "
          f"open in chrome://tracing or Perfetto")

    cluster.teardown()


if __name__ == "__main__":
    main()
