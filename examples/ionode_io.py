#!/usr/bin/env python
"""I/O-node performance evaluation (the §6 / ZeptoOS BG/L direction).

Compute nodes funnel their writes through one I/O node's ciod daemons;
as the client count grows, KTAU's integrated view on the I/O node shows
where the time goes — network receive processing, the block-I/O submit
path, and (dominantly) waiting on the shared disk.

Run:  python examples/ionode_io.py
"""

from repro.experiments.ionode import render, run_ionode, scaling_sweep
from repro.workloads.ionode import IoNodeParams
from repro.sim.units import MSEC


def main() -> None:
    params = IoNodeParams(nrequests=16, request_bytes=65_536,
                          think_ns=4 * MSEC, fsync_every=8)

    print("sweeping 1 -> 8 clients through one I/O node ...\n")
    results = scaling_sweep((1, 2, 4, 8), params)
    print(render(results))

    print("per-client latency growth:")
    base = results[0].mean_latency_ms()
    for r in results:
        bar = "#" * int(r.mean_latency_ms())
        print(f"  {r.nclients} clients: {r.mean_latency_ms():6.2f} ms "
              f"({r.mean_latency_ms()/base:4.1f}x)  {bar}")

    last = results[-1]
    print(f"\nI/O node at 8 clients: {last.disk_requests} disk requests, "
          f"{last.disk_bytes / 1e6:.1f} MB written")
    print("ciod kernel-time breakdown (KTAU groups):")
    for group, seconds in sorted(last.ciod_groups.items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {group:<10} {seconds:8.4f} s")
    print("\nthe 'sched' wait dominates: ciod tasks sleep on the network "
          "and the disk — the\nintegrated view separates that wait from "
          "the actual receive/submit work, which is\nexactly what the "
          "BG/L I/O-node evaluation needs.")


if __name__ == "__main__":
    main()
