#!/usr/bin/env python
"""Direct measurement vs statistical sampling (§2's OProfile critique).

The same MPI job is observed two ways at once: KTAU's compiled-in direct
instrumentation, and an OProfile-like sampling profiler (1 kHz profiling
interrupt + oprofiled daemon).  The comparison makes §2's points
measurable:

* on-CPU time estimates converge statistically, but
* blocked time — the bulk of MPI_Recv in an imbalanced run — is
  *structurally invisible* to sampling: a sleeping task takes no samples;
* the sampler needs a daemon, and both the interrupts and the daemon
  perturb the node.

Run:  python examples/sampling_vs_ktau.py
"""

from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.core.libktau import LibKtau
from repro.oprofile import OProfileDaemon, OProfileSampler, compare_with_ktau
from repro.oprofile.compare import render_comparison, sampling_blindness_s
from repro.sim.units import MSEC, USEC
from repro.workloads.lu import LuParams, lu_app


def main() -> None:
    params = LuParams(niters=6, iter_compute_ns=60 * MSEC, halo_bytes=32_768,
                      sweep_msg_bytes=4_096, inorm=3)
    cluster = make_chiba(nnodes=4, seed=17)

    # arm a sampler + daemon on rank 3's node (the wavefront tail waits a lot)
    watched_rank = 3
    node = cluster.nodes[3]
    sampler = OProfileSampler(node.kernel, period_ns=1 * MSEC)
    daemon = OProfileDaemon(sampler, period_ns=100 * MSEC)

    job = launch_mpi_job(cluster, 4, lu_app(params),
                         placement=block_placement(1, 4))
    sampler.start()
    daemon.start()
    job.run()
    sampler.stop()
    daemon.stop()

    task = job.world.rank_tasks[watched_rank]
    lib = LibKtau(node.kernel.ktau_proc)
    kdump = lib.read_profiles(include_zombies=True)[task.pid]
    rows = compare_with_ktau(daemon.samples, sampler.period_ns, kdump,
                             node.kernel.clock.hz, pid=task.pid,
                             udump=job.profilers[watched_rank].dump())
    print(render_comparison(rows, top=16))

    blind = sampling_blindness_s(rows)
    print(f"scheduling wait measured by KTAU but invisible to sampling: "
          f"{blind:.3f}s\n")
    print(f"sampler: {sampler.total_samples} interrupts, "
          f"{sampler.dropped} dropped; oprofiled burned "
          f"{(daemon.task.utime_ns + daemon.task.stime_ns)/1e6:.2f} ms CPU")
    print("\nKTAU sees the full program-OS interaction (including waits) "
          "online and daemon-free;\nthe sampler sees only on-CPU shares, "
          "after the fact, through a daemon.  (§2, Table 1)")

    cluster.teardown()


if __name__ == "__main__":
    main()
