#!/usr/bin/env python
"""Controlled SMP interference (§5.1 / Figure 2-C and 2-D).

Four LU ranks on the 4-CPU `neutron` host share the machine with a
cycle-stealing daemon pinned to CPU0.  KTAU's voluntary/involuntary
scheduling split shows *which* rank is being preempted locally and which
ranks are merely waiting for it — then the merged user/kernel profile
shows how much of each MPI routine was really kernel time.

Run:  python examples/smp_interference.py
"""

from repro.analysis.profiles import harvest_job
from repro.analysis.render import ascii_table
from repro.cluster.daemons import start_busy_daemon
from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_neutron
from repro.sim.units import MSEC
from repro.tau.merge import merged_profile
from repro.workloads.lu import LuParams, lu_app


def main() -> None:
    cluster = make_neutron(seed=7)
    node = cluster.nodes[0]

    # The intruder: pinned to CPU0, busy 40 ms out of every 140 ms.
    start_busy_daemon(node, pin_cpu=0, period_ns=100 * MSEC,
                      busy_ns=40 * MSEC)

    params = LuParams(niters=8, iter_compute_ns=80 * MSEC, halo_bytes=32_768,
                      sweep_msg_bytes=4_096, inorm=4,
                      pipeline_fill_frac=0.03)
    job = launch_mpi_job(cluster, 4, lu_app(params),
                         placement=block_placement(4, 4), comm_prefix="lu")
    job.run()
    data = harvest_job(job)

    print("=== Figure 2-C: voluntary vs involuntary scheduling ===")
    rows = []
    for rank, rd in enumerate(data.ranks):
        rows.append((f"LU-{rank}", rd.voluntary_sched_s(),
                     rd.involuntary_sched_s()))
    print(ascii_table(("rank", "voluntary (s)", "involuntary (s)"), rows,
                      floatfmt=".4f"))
    victim = max(range(4), key=lambda r: rows[r][2])
    print(f"LU-{victim} shares CPU0 with the daemon: it is preempted "
          f"(involuntary) while the others wait for it (voluntary).\n")

    print("=== Figure 2-D: TAU-only vs merged user/kernel profile (rank 0) ===")
    rd = data.ranks[0]
    merged = merged_profile(rd.uprofile, rd.kprofile)
    merged_by_name = {(r.name, r.layer): r for r in merged}
    rows = []
    for name, (_c, _i, excl) in sorted(rd.uprofile.perf.items(),
                                       key=lambda kv: -kv[1][2])[:8]:
        true_excl = merged_by_name[(name, "user")].excl_cycles / rd.hz
        rows.append((name, excl / rd.hz, true_excl))
    print(ascii_table(("routine", "TAU-only excl (s)", "merged 'true' excl (s)"),
                      rows, floatfmt=".4f"))
    print("kernel rows now first-class in the merged profile:")
    kernel_rows = [(r.name, r.excl_cycles / rd.hz) for r in merged
                   if r.layer == "kernel"][:6]
    print(ascii_table(("kernel event", "excl (s)"), kernel_rows,
                      floatfmt=".4f"))

    cluster.teardown()


if __name__ == "__main__":
    main()
