#!/usr/bin/env python
"""OS-noise amplification — the problem that motivates KTAU.

The paper opens with OS effects on application performance, citing the
"missing supercomputer performance" line of work [12, 21]: per-node OS
interference that costs a few percent locally is *amplified* by
collective synchronisation as machines scale, because every step waits
for whichever rank the noise hit.

This example reproduces the amplification curve on the simulated
substrate — fixed per-node noise, growing global slowdown — and then
uses KTAU's integrated views to attribute it the way §5 does: the noise
lands as involuntary scheduling on the struck ranks and shows up as
voluntary waiting everywhere else.

Run:  python examples/noise_amplification.py
"""

import numpy as np

from repro.experiments.noise import NoiseParams, amplification_sweep, render
from repro.sim.units import MSEC


def main() -> None:
    params = NoiseParams(steps=60, quantum_ns=2 * MSEC,
                         noise_period_ns=40 * MSEC, noise_burst_ns=2 * MSEC)
    duty = 100 * params.noise_burst_ns / (params.noise_period_ns
                                          + params.noise_burst_ns)
    print(f"per-node noise: one {params.noise_burst_ns/1e6:.0f} ms burst "
          f"every {params.noise_period_ns/1e6:.0f} ms (~{duty:.0f}% duty), "
          f"random phase per node\n")

    results = amplification_sweep((4, 16, 64), params)
    print(render(results))

    print("amplification: the same local noise costs "
          f"{results[0].slowdown_pct:.1f}% at {results[0].nranks} nodes but "
          f"{results[-1].slowdown_pct:.1f}% at {results[-1].nranks} nodes.\n")

    data = results[-1].data_noisy
    inv = np.array([r.involuntary_sched_s() for r in data.ranks])
    vol = np.array([r.voluntary_sched_s() for r in data.ranks])
    print("KTAU's attribution at 64 nodes:")
    print(f"  involuntary scheduling (the noise hits):  med "
          f"{np.median(inv)*1e3:.2f} ms, max {inv.max()*1e3:.2f} ms per rank")
    print(f"  voluntary scheduling (waiting at sync):   med "
          f"{np.median(vol)*1e3:.1f} ms per rank")
    print("\nthe direct damage is milliseconds per rank; the waits it "
          "induces are 100x that —\nexactly the indirect OS influence the "
          "paper builds KTAU to expose.")


if __name__ == "__main__":
    main()
