#!/usr/bin/env python
"""Quickstart: boot a node, run a program under runKtau, read /proc/ktau.

This is the smallest end-to-end tour of the public API:

1. build a simulated node (a KTAU-patched kernel);
2. run a small program under the runKtau wrapper (the `time`-like client);
3. read kernel profiles through libKtau's documented size/read protocol;
4. print the per-process report.

Run:  python examples/quickstart.py
"""

from repro.core.clients.runktau import run_ktau
from repro.core.libktau import LibKtau, Scope
from repro.kernel.kernel import Kernel
from repro.kernel.params import KernelParams
from repro.sim.engine import Engine
from repro.sim.rng import RngHub
from repro.sim.units import MSEC, SEC


def my_program(ctx):
    """A toy program: compute, sleep, make a few system calls."""
    for _ in range(5):
        yield from ctx.compute(8 * MSEC)  # user-space work
        yield from ctx.sleep(3 * MSEC)  # voluntary scheduling
        yield from ctx.syscall("sys_getppid")  # a cheap syscall
    t_us = yield from ctx.gettimeofday()
    print(f"  [guest] gettimeofday says {t_us} us of virtual time")


def main() -> None:
    # 1. One node: 2-CPU 450 MHz 'Chiba-like' box with KTAU compiled in.
    engine = Engine()
    kernel = Kernel(engine, KernelParams(), "node0", RngHub(seed=42))

    # 2. Run the program under runKtau.
    result = run_ktau(kernel, my_program, comm="quickstart")

    # Drive the simulation until the queue is quiet.
    engine.run(until=2 * SEC)

    # 3. runKtau harvested the profile from the zombie store at exit:
    print(result.report())

    # 4. The same data is reachable through libKtau directly — here the
    #    kernel-wide scope, which also shows the idle task's interrupt
    #    servicing (the "kernel-wide perspective" of the paper).
    lib = LibKtau(kernel.ktau_proc)
    profiles = lib.read_profiles(Scope.ALL, include_zombies=True)
    print(f"libKtau sees {len(profiles)} processes on {kernel.name}:")
    for pid, dump in sorted(profiles.items()):
        events = len(dump.perf)
        print(f"  pid {pid:>6} {dump.comm:<12} {events:>3} kernel events")

    # Bonus: the ASCII interchange format round-trips.
    text = lib.to_ascii(profiles)
    assert lib.from_ascii(text).keys() == profiles.keys()
    print(f"\nASCII dump is {len(text.splitlines())} lines; round-trip OK.")


if __name__ == "__main__":
    main()
