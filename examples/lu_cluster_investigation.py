#!/usr/bin/env python
"""The Chiba-City detective story (§5.2), replayed end to end.

A 128-rank LU run over 64 dual-CPU nodes is mysteriously ~60-70% slower
than the same job on 128 nodes.  Using only KTAU's merged user/kernel
views — exactly the paper's methodology — this script:

1. spots that most ranks wait unusually long in MPI_Recv, except two
   outliers (Figure 3);
2. sees those two ranks suffer *involuntary* scheduling instead
   (Figure 6's signature) and land on the same node;
3. rules out daemon interference from the node view (Figure 7);
4. checks /proc/cpuinfo on the suspect node: the kernel detected one CPU;
5. removes the faulty node and re-runs, recovering a large chunk of the
   gap (Table 2's 64x2 row).

Run:  python examples/lu_cluster_investigation.py      (~1-2 min)
"""

import numpy as np

from repro.analysis.histogram import outlier_ranks
from repro.analysis.render import ascii_bargraph
from repro.experiments.common import (ChibaConfig, bench_lu_params,
                                      run_chiba_app)
from repro.experiments import fig7


def main() -> None:
    params = bench_lu_params()

    print("=== step 0: the two runs ===")
    base = run_chiba_app(ChibaConfig(label="128x1"), "lu", params)
    bad = run_chiba_app(ChibaConfig(label="64x2 Anomaly", procs_per_node=2,
                                    anomaly=True), "lu", params)
    gap = 100 * (bad.exec_time_s - base.exec_time_s) / base.exec_time_s
    print(f"128x1: {base.exec_time_s:.3f}s   64x2: {bad.exec_time_s:.3f}s "
          f"-> {gap:.1f}% slower.  Why?\n")

    print("=== step 1: user-level profile — MPI_Recv across ranks ===")
    recv = np.array([r.user_excl_s("MPI_Recv()") for r in bad.ranks])
    outliers = outlier_ranks(recv, k=2.5, side="low")
    print(f"median MPI_Recv wait {np.median(recv):.3f}s; "
          f"low outliers: ranks {outliers}")
    suspects = sorted(outliers, key=lambda r: recv[r])[:2]
    print(f"the two most extreme: ranks {suspects} — they are NOT waiting.\n")

    print("=== step 2: merged view — who gets preempted? ===")
    inv = np.array([r.involuntary_sched_s() for r in bad.ranks])
    top = np.argsort(inv)[-2:]
    print("top involuntary scheduling: "
          + ", ".join(f"rank {r}: {inv[r]:.3f}s" for r in top))
    nodes = {bad.ranks[r].node for r in top}
    print(f"both live on {nodes} — local preemption, not remote waiting!\n")

    (node_name,) = nodes
    print(f"=== step 3: all processes on {node_name} (daemon hypothesis) ===")
    view = fig7.build(bad, node_name=node_name)
    rows = sorted(((f"{comm}({pid})", t)
                   for pid, (comm, t) in view.processes.items()),
                  key=lambda kv: -kv[1])[:6]
    print(ascii_bargraph(rows))
    print(f"daemon max activity {view.daemon_max_s()*1e3:.2f}ms vs LU "
          f"{view.lu_min_s()*1e3:.1f}ms -> daemons are innocent.\n")

    print("=== step 4: the node itself ===")
    # Re-create the faulty node's kernel configuration to inspect cpuinfo
    # (the harvested run's clusters are torn down; the experiment harness
    # reproduces the same node deterministically).
    from repro.cluster.machines import make_chiba
    cluster = make_chiba(nnodes=64, seed=1, anomaly_nodes=(61,))
    print(f"/proc/cpuinfo on {cluster.nodes[61].name}:")
    print(cluster.nodes[61].kernel.cpuinfo())
    print("one processor detected on a dual-CPU node — the LU pair is "
          "time-sharing a single CPU.\n")

    print("=== step 5: remove the faulty node and re-run ===")
    fixed = run_chiba_app(ChibaConfig(label="64x2", procs_per_node=2), "lu",
                          params)
    improvement = 100 * (bad.exec_time_s - fixed.exec_time_s) / bad.exec_time_s
    residual = 100 * (fixed.exec_time_s - base.exec_time_s) / base.exec_time_s
    print(f"64x2 without the bad node: {fixed.exec_time_s:.3f}s "
          f"({improvement:.1f}% better; still {residual:.1f}% over 128x1 — "
          f"see the pinning / irq-balancing steps in the Table 2 bench).")


if __name__ == "__main__":
    main()
