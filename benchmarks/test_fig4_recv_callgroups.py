"""Figure 4: MPI_Recv's kernel call groups — mean vs ranks 125 and 61.

Reproduction target: on average most of MPI_Recv is spent inside
scheduling (ranks block waiting for messages), and the two anomaly-node
ranks show comparatively *less* scheduling inside MPI_Recv.
"""

from repro.experiments import fig4
from benchmarks.conftest import write_report


def test_fig4_recv_callgroups(benchmark, anomaly_lu):
    result = benchmark(fig4.build, anomaly_lu)

    mean = result.mean_by_group
    assert mean, "no kernel activity attributed to MPI_Recv"
    # scheduling dominates the mean MPI_Recv interior
    assert mean["sched"] == max(mean.values())
    assert mean["sched"] > 0.1
    # ranks 125 and 61 wait comparatively less
    assert result.rank125_by_group.get("sched", 0.0) < mean["sched"]
    assert result.rank61_by_group.get("sched", 0.0) < mean["sched"]

    text = fig4.render(result)
    write_report("fig4.txt", text)
    print("\n" + text)
