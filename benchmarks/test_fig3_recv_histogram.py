"""Figure 3: MPI_Recv exclusive-time histogram; ranks 61/125 as outliers.

Reproduction target: in the 64x2 anomaly run, the two ranks sharing the
faulty single-CPU node (61 and 125 under cyclic placement) sit at the low
end of the MPI_Recv distribution — everyone else waits *for* them.
"""

import numpy as np

from repro.experiments import fig3
from benchmarks.conftest import write_report


def test_fig3_recv_histogram(benchmark, anomaly_lu):
    result = benchmark(fig3.build, anomaly_lu)
    times = np.array(result.recv_excl_s)

    # the faulty node's ranks are low outliers
    assert 61 in result.low_outliers
    assert 125 in result.low_outliers
    # and genuinely extreme: both below half the median wait
    med = float(np.median(times))
    assert times[61] < 0.5 * med
    assert times[125] < 0.5 * med
    # the bulk of ranks shows substantial MPI_Recv time
    assert med > 0.2

    text = fig3.render(result)
    write_report("fig3.txt", text)
    print("\n" + text)
