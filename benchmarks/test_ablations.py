"""Ablations of the design choices DESIGN.md calls out.

Each ablation disables one mechanism and checks the phenomenon it is
responsible for disappears (or degrades) — run at reduced scale.
"""

import numpy as np
import pytest

from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.analysis.profiles import harvest_job
from repro.kernel.params import KernelParams
from repro.sim.units import MSEC
from repro.workloads.lu import LuParams, lu_app

ABLATION_LU = LuParams(niters=6, iter_compute_ns=60 * MSEC, halo_bytes=49_152,
                       sweep_msg_bytes=4_096, inorm=3, pipeline_fill_frac=0.02)


def run_lu(nranks=16, procs_per_node=2, pin=True, seed=4, tweak=None,
           params=ABLATION_LU, irq_balance=False):
    cluster = make_chiba(nnodes=nranks // procs_per_node, seed=seed,
                         irq_balance=irq_balance, tweak=tweak)
    job = launch_mpi_job(cluster, nranks, lu_app(params),
                         placement=block_placement(procs_per_node, nranks),
                         pin=pin)
    job.run(limit_s=600)
    data = harvest_job(job)
    cluster.teardown()
    return data


def _mean_flow_us(data):
    values = [r.flow_rx_per_call_us() for r in data.ranks
              if r.flow_rx_calls > 0]
    return float(np.mean(values))


def test_ablation_cache_mismatch_factor(benchmark):
    """Without the SMP cache-locality dilation the Figure 10 cost shift
    between matched and mismatched receive processing disappears."""

    def no_mismatch(_i, params: KernelParams) -> KernelParams:
        from dataclasses import replace
        return params.with_(net=replace(params.net, cache_mismatch_factor=1.0))

    with_model = run_lu(irq_balance=True)
    without = benchmark.pedantic(
        lambda: run_lu(irq_balance=True, tweak=no_mismatch),
        rounds=1, iterations=1)
    assert _mean_flow_us(with_model) > _mean_flow_us(without) * 1.04
    print(f"\nper-call TCP cost: with cache model {_mean_flow_us(with_model):.2f}us, "
          f"ablated {_mean_flow_us(without):.2f}us")


def test_ablation_smp_compute_dilation(benchmark):
    """Without memory-system contention, the residual 2-ranks-per-node
    penalty largely vanishes (Table 2's pinned-vs-128x1 gap)."""

    def no_dilation(_i, params: KernelParams) -> KernelParams:
        return params.with_(smp_compute_dilation=0.0)

    normal = run_lu()
    ablated = benchmark.pedantic(lambda: run_lu(tweak=no_dilation),
                                 rounds=1, iterations=1)
    assert ablated.exec_time_s < normal.exec_time_s * 0.97
    print(f"\n64x2 pinned exec: full model {normal.exec_time_s:.3f}s, "
          f"no SMP dilation {ablated.exec_time_s:.3f}s")


def test_ablation_interrupt_coalescing(benchmark):
    """Coalescing is a fidelity/efficiency trade: fewer interrupts with
    larger groups, identical bytes delivered."""
    from repro.kernel.net.nic import Nic

    original = Nic.coalesce_segments
    try:
        Nic.coalesce_segments = 1
        fine = run_lu(nranks=8, procs_per_node=1)
        Nic.coalesce_segments = 8
        coarse = benchmark.pedantic(
            lambda: run_lu(nranks=8, procs_per_node=1),
            rounds=1, iterations=1)
    finally:
        Nic.coalesce_segments = original
    fine_irqs = sum(sum(c) for c in fine.node_irq_counts.values())
    coarse_irqs = sum(sum(c) for c in coarse.node_irq_counts.values())
    assert fine_irqs > 3 * coarse_irqs
    # same per-segment processing happened regardless
    fine_calls = sum(r.flow_rx_calls for r in fine.ranks)
    coarse_calls = sum(r.flow_rx_calls for r in coarse.ranks)
    assert fine_calls == coarse_calls
    print(f"\nhard IRQs: per-segment {fine_irqs}, coalesced x8 {coarse_irqs}")


def test_ablation_wavefront_pipelining(benchmark):
    """The pipeline-fill fraction is the LU-fidelity knob: a coarse
    (unpipelined) sweep serialises the diagonal and inflates execution."""
    from dataclasses import replace

    pipelined = run_lu(nranks=16, procs_per_node=1, pin=False)
    coarse_params = replace(ABLATION_LU, pipeline_fill_frac=1.0)
    coarse = benchmark.pedantic(
        lambda: run_lu(nranks=16, procs_per_node=1, pin=False,
                       params=coarse_params),
        rounds=1, iterations=1)
    assert coarse.exec_time_s > pipelined.exec_time_s * 1.15
    print(f"\nLU exec: pipelined sweep {pipelined.exec_time_s:.3f}s, "
          f"serialised sweep {coarse.exec_time_s:.3f}s")


def test_ablation_tickless_idle_balance(benchmark):
    """Tick-driven idle balancing is what rescues work queued behind a
    busy CPU; without ticks two tasks spawned on one CPU serialise."""
    from repro.kernel.kernel import Kernel
    from repro.sim.engine import Engine
    from repro.sim.rng import RngHub
    from repro.sim.units import SEC

    def race(timer_tick_ns):
        engine = Engine()
        params = KernelParams(ncpus=2, timer_tick_ns=timer_tick_ns,
                              minor_fault_prob=0.0, smp_compute_dilation=0.0)
        kernel = Kernel(engine, params, "ablate", RngHub(1))
        finish = []

        def burn(ctx):
            yield from ctx.compute(100 * MSEC)
            finish.append(ctx.now)

        kernel.spawn(burn, "a", start_cpu=0)
        kernel.spawn(burn, "b", start_cpu=0)
        engine.run(until=1 * SEC)
        return max(finish)

    with_ticks = race(10 * MSEC)
    without = benchmark.pedantic(lambda: race(None), rounds=1, iterations=1)
    assert with_ticks < 150 * MSEC
    assert without >= 200 * MSEC
    print(f"\n2 tasks, 1 start CPU: ticks {with_ticks/1e6:.1f}ms, "
          f"tickless {without/1e6:.1f}ms")
