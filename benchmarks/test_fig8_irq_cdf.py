"""Figure 8: CDF of per-rank interrupt activity.

Reproduction target: the pinned 64x2 run *without* irq-balancing shows a
prominent bimodal distribution — the CPU0-pinned half of the ranks
absorbs (nearly) all interrupt-context time — while irq-balancing and
the 128x1 configuration flatten it.
"""

import numpy as np

from repro.experiments import fig8
from benchmarks.conftest import write_report


def test_fig8_irq_cdf(benchmark, lu_runs):
    result = benchmark(fig8.build, lu_runs)

    pinned = result.bimodality["64x2 Pinned"]
    balanced = result.bimodality["64x2 Pin,I-Bal"]
    base = result.bimodality["128x1"]

    # bimodal without balancing; much flatter with it
    assert pinned > 0.3
    assert pinned > 2 * balanced
    assert pinned > 2 * base

    # the split really follows the pinned CPU: CPU0 ranks (slot 0 =
    # ranks 0..63) absorb far more than CPU1 ranks (64..127)
    values = np.array(result.values["64x2 Pinned"])
    assert np.median(values[:64]) > 10 * max(np.median(values[64:]), 1e-6)

    text = fig8.render(result)
    write_report("fig8.txt", text)
    print("\n" + text)
