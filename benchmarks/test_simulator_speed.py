"""Raw simulator performance (not a paper artifact).

Tracks the event-processing throughput of the substrate so fidelity work
does not silently regress the ability to run 128-rank experiments.
"""

from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.sim.engine import Engine
from repro.sim.units import MSEC
from repro.workloads.lu import LuParams, lu_app

SPEED_LU = LuParams(niters=4, iter_compute_ns=20 * MSEC, halo_bytes=16_384,
                    sweep_msg_bytes=4_096, inorm=2)


def test_engine_raw_event_throughput(benchmark):
    def churn():
        engine = Engine()
        count = 50_000

        def reschedule():
            nonlocal count
            count -= 1
            if count > 0:
                engine.schedule(10, reschedule)

        engine.schedule(1, reschedule)
        engine.run_until_idle()
        return engine.events_processed

    events = benchmark(churn)
    assert events == 50_000


def test_lu_16rank_simulation_speed(benchmark):
    def run():
        cluster = make_chiba(nnodes=16, seed=2)
        job = launch_mpi_job(cluster, 16, lu_app(SPEED_LU),
                             placement=block_placement(1, 16))
        job.run(limit_s=600)
        events = cluster.engine.events_processed
        cluster.teardown()
        return events

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 3_000
