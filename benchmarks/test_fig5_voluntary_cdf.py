"""Figure 5: CDF of per-rank voluntary scheduling time, five configs.

Reproduction targets:

* the anomaly run shifts the bulk of ranks *up* (they wait for the slow
  node) while a small proportion of ranks — those on the faulty node —
  show very low voluntary time (the curve's bottom tail);
* removing the anomaly lowers the distribution.
"""

import numpy as np

from repro.experiments import fig5_6
from benchmarks.conftest import write_report


def test_fig5_voluntary_cdf(benchmark, lu_runs):
    result = benchmark(fig5_6.build, lu_runs, "voluntary")

    anomaly = np.array(result.values["64x2 Anomaly"])
    plain = np.array(result.values["64x2"])
    base = np.array(result.values["128x1"])

    # most ranks wait longer under the anomaly
    assert np.median(anomaly) > np.median(plain)
    assert np.median(plain) > np.median(base)
    # the bottom tail: the anomaly node's ranks wait the least — the
    # busiest of the pair barely at all, its partner visibly below the
    # bulk (it still waits for its CPU-mate between preemptions)
    low = np.sort(anomaly)[:2]
    assert low[0] < 0.55 * np.median(anomaly)
    assert low[1] < 0.80 * np.median(anomaly)
    lowest_ranks = set(np.argsort(anomaly)[:2])
    assert lowest_ranks & {61, 125}

    text = fig5_6.render(result)
    write_report("fig5.txt", text)
    print("\n" + text)
