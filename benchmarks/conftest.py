"""Shared fixtures for the reproduction benchmarks.

The five-configuration Chiba runs are expensive, so they are simulated
once per process (memoised in :mod:`repro.experiments.chiba`) and shared
by every figure/table benchmark — which also mirrors the paper, where the
same experiment feeds several figures.  Rendered paper-vs-measured
reports are written to ``benchmarks/reports/`` as a side artifact.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import fig9_10
from repro.experiments.chiba import get_run, get_standard_runs
from repro.experiments.common import STANDARD_CHIBA_CONFIGS

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def write_report(name: str, text: str) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / name).write_text(text)


@pytest.fixture(scope="session")
def lu_runs():
    """The five LU configurations (Figures 3–8, Table 2)."""
    return get_standard_runs("lu")


@pytest.fixture(scope="session")
def sweep_runs():
    """The five Sweep3D configurations (Table 2)."""
    return get_standard_runs("sweep3d")


@pytest.fixture(scope="session")
def anomaly_lu(lu_runs):
    """The 64x2 anomaly run (Figures 3, 4, 7)."""
    return lu_runs["64x2 Anomaly"]


@pytest.fixture(scope="session")
def fig9_runs():
    """The three Sweep3D configurations of Figures 9/10."""
    return {cfg.label: get_run(cfg, "sweep3d") for cfg in fig9_10.FIG9_CONFIGS}
