"""Table 1: classification of related kernel-measurement tools.

A taxonomy, not a measurement — regenerated verbatim and checked for the
claims the paper's discussion rests on.
"""

from repro.analysis.related_work import (TABLE1, render_table1,
                                         tools_with_explicit_parallel_support,
                                         tools_with_full_merge)
from benchmarks.conftest import write_report


def test_table1_related_work(benchmark):
    text = benchmark(render_table1)
    assert len(TABLE1) == 11
    # the paper's discussion: only KTAU+TAU offers full merged
    # user/kernel data and explicit parallel support
    assert tools_with_full_merge() == ["KTAU+TAU"]
    assert tools_with_explicit_parallel_support() == ["KTAU+TAU"]
    write_report("table1.txt", text)
    print("\n" + text)
