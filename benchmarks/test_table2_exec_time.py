"""Table 2: execution time and % slowdown from 128x1 (LU and Sweep3D).

Reproduction target (shape, not absolute seconds):

* strict ordering 128x1 < Pin,I-Bal <= Pinned < 64x2 < Anomaly for LU;
* the anomaly run slower by tens of percent (paper: 73.2 % LU / 72.8 %
  Sweep3D), dominating every other configuration;
* pinning a small improvement over unpinned; irq-balancing a further one.
"""

import pytest

from repro.experiments import table2
from benchmarks.conftest import write_report


@pytest.fixture(scope="session")
def table2_rows(lu_runs, sweep_runs):
    return table2.build()


def test_table2_exec_time(benchmark, table2_rows):
    rows = table2_rows
    text = benchmark(table2.render, rows)
    by = {r.config: r for r in rows}

    # LU ordering (paper: 0 / 73.2 / 36.1 / 31.7 / 13.6)
    assert by["128x1"].lu_slowdown_pct == 0.0
    assert by["64x2 Anomaly"].lu_slowdown_pct > by["64x2"].lu_slowdown_pct
    assert by["64x2"].lu_slowdown_pct > by["64x2 Pinned"].lu_slowdown_pct
    assert by["64x2 Pinned"].lu_slowdown_pct >= by["64x2 Pin,I-Bal"].lu_slowdown_pct
    assert by["64x2 Pin,I-Bal"].lu_slowdown_pct > 5.0

    # the anomaly dominates by a wide margin
    assert by["64x2 Anomaly"].lu_slowdown_pct > 40.0
    assert by["64x2 Anomaly"].sweep_slowdown_pct > 35.0

    # Sweep3D ordering (paper: 0 / 72.8 / 15.9 / 15.6 / 9.4); the final
    # irq-balance step is within noise at our scale, hence the epsilon.
    assert by["64x2 Anomaly"].sweep_slowdown_pct > by["64x2"].sweep_slowdown_pct
    assert by["64x2"].sweep_slowdown_pct > by["64x2 Pinned"].sweep_slowdown_pct
    assert by["64x2 Pin,I-Bal"].sweep_slowdown_pct <= \
        by["64x2 Pinned"].sweep_slowdown_pct + 1.0

    write_report("table2.txt", text)
    print("\n" + text)
