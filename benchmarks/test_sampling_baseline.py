"""Baseline comparator: statistical sampling vs KTAU's direct measurement.

Quantifies the §2/Table 1 critique of sampling profilers on the same
simulated workload KTAU measures:

* long on-CPU routines converge (within statistical error);
* blocked time (voluntary scheduling — the bulk of MPI waiting) is
  structurally invisible to the sampler;
* the sampler requires a daemon, whose CPU cost is measurable.
"""

from repro.oprofile.harness import run_comparison
from repro.oprofile.compare import render_comparison, sampling_blindness_s
from benchmarks.conftest import write_report


def test_sampling_baseline(benchmark):
    rows, daemon = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    by = {r.symbol: r for r in rows}

    # 1. long on-CPU routines converge within statistical error
    assert abs(by["rhs"].relative_error) < 0.15
    assert abs(by["jacld"].relative_error) < 0.25

    # 2. blocked time is invisible to sampling
    assert sampling_blindness_s(rows) > 0.02
    assert by["schedule_vol"].sampled_s < 0.2 * by["schedule_vol"].measured_s

    # 3. short kernel events are badly estimated or missed entirely
    assert by["tcp_v4_rcv"].sampled_s < 0.5 * by["tcp_v4_rcv"].measured_s

    # 4. the daemon's own perturbation is real
    assert daemon.task.utime_ns + daemon.task.stime_ns > 0

    text = render_comparison(rows, top=16)
    write_report("sampling_baseline.txt", text)
    print("\n" + text)
