"""CI bench regression guard: ``make bench-guard``.

Compares a fresh (usually ``--smoke``) bench run against the committed
``BENCH_pr10.json``.  Raw wall times are NOT compared — CI machines and
the artifact's host differ, and cross-host wall clocks are provenance,
not baselines (see ``meta.host``).  What IS comparable is the
*same-process ratio* of the calendar-queue engine to the in-harness
reference heap: both sides of that ratio ran interleaved on one
machine, so the ratio tracks code, not hardware.

Fails (exit 1) if either churn shape's ``speedup_vs_heap_baseline``
drops more than ``TOLERANCE`` below the committed ratio — i.e. the
calendar queue lost more than 25% of its measured advantage — or if
the fresh run's bit-identity booleans (parallel fan-out, empty fault
plan, streaming bottleneck attributor, counters-on time profiles) are
not all True: those are host-independent correctness claims, not
timings.

Usage::

    python benchmarks/check_regression.py FRESH.json [COMMITTED.json]
"""

from __future__ import annotations

import json
import sys

TOLERANCE = 0.25
ROWS = ("engine_churn", "engine_cancel_churn")


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__)
        return 2
    fresh_path = argv[0]
    committed_path = argv[1] if len(argv) > 1 else "BENCH_pr10.json"
    with open(fresh_path) as fh:
        fresh = json.load(fh)
    with open(committed_path) as fh:
        committed = json.load(fh)

    failed = False
    for row in ROWS:
        ref = committed[row]["speedup_vs_heap_baseline"]
        got = fresh[row]["speedup_vs_heap_baseline"]
        floor = ref * (1.0 - TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"{row}: speedup_vs_heap_baseline {got:.3f} "
              f"(committed {ref:.3f}, floor {floor:.3f}) {verdict}")
        if got < floor:
            failed = True
    identity_rows = (
        ("faults_overhead", "lu_bit_identical_to_plain"),
        ("bottleneck_overhead", "profiles_bit_identical"),
        ("counters_overhead", "time_profiles_identical"),
    )
    for section, key in identity_rows:
        ok = bool(fresh.get(section, {}).get(key, False))
        print(f"{section}.{key}: {ok if ok else 'FAILED'}")
        if not ok:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
