"""Extension experiment: OS-noise amplification (the paper's motivation).

The introduction motivates kernel measurement with OS-interference
problems like Petrini et al. [12]: per-node noise that costs a few
percent locally is amplified by collective synchronisation as the
machine scales.  The harness runs a barrier-synchronised fine-grained
computation with phase-randomised per-node noise daemons across
increasing scales.
"""

from repro.experiments.noise import NoiseParams, amplification_sweep, render
from repro.sim.units import MSEC
from benchmarks.conftest import write_report


def test_noise_amplification(benchmark):
    params = NoiseParams(steps=60, quantum_ns=2 * MSEC)
    results = benchmark.pedantic(
        lambda: amplification_sweep((4, 16, 64), params),
        rounds=1, iterations=1)

    slowdowns = [r.slowdown_pct for r in results]
    # fixed per-node noise, growing global cost: the amplification curve
    assert slowdowns[0] < slowdowns[1] < slowdowns[2]
    assert slowdowns[2] > 3 * slowdowns[0]
    # locally the noise is small (few percent at 4 nodes)
    assert slowdowns[0] < 15.0

    text = render(results)
    write_report("noise_amplification.txt", text)
    print("\n" + text)
