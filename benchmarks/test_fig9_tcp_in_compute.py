"""Figure 9: kernel TCP calls inside Sweep3D's compute phase (CDF).

Reproduction targets:

* 64x2 Pinned,I-Bal shows *far* more TCP calls landing inside the
  compute-bound section of sweep() than 128x1 — the
  communication/computation mixing that indicates imbalance;
* the "128x1 Pin,IRQ CPU1" control tracks plain 128x1, showing the spare
  processor is not what absorbs the TCP work.
"""

import numpy as np

from repro.experiments import fig9_10
from benchmarks.conftest import write_report


def test_fig9_tcp_in_compute(benchmark, fig9_runs):
    result = benchmark(fig9_10.build_fig9, fig9_runs)

    base = np.array(result.values["128x1"], dtype=float)
    control = np.array(result.values["128x1 Pin,IRQ CPU1"], dtype=float)
    smp = np.array(result.values["64x2 Pinned,I-Bal"], dtype=float)

    # 64x2 mixes communication into compute far more than 128x1
    assert np.median(smp) > 5 * max(np.median(base), 1.0)
    # the control tracks plain 128x1 (same order of magnitude, tiny)
    assert np.median(control) < 0.3 * np.median(smp)

    text = fig9_10.render_fig9(result)
    write_report("fig9.txt", text)
    print("\n" + text)
