"""Figure 2 (panels A–E): the controlled §5.1 experiments.

Reproduction targets per panel:

* A — the perturbed node is identifiable in the kernel-wide view
  (inflated preemption);
* B — the interference process is the most active non-LU process on it;
* C — the daemon-sharing rank suffers involuntary scheduling while the
  other ranks wait voluntarily;
* D — the merged profile adds kernel rows and shrinks user exclusive
  times to their true values (MPI_Recv nearly vanishes);
* E — one MPI_Send's merged trace shows the kernel send path
  (sys_writev → sock_sendmsg → tcp_sendmsg).
"""

import numpy as np
import pytest

from repro.experiments import fig2_controlled as f2
from benchmarks.conftest import write_report


@pytest.fixture(scope="session")
def fig2ab():
    return f2.run_fig2ab()


def test_fig2ab_kernel_wide_and_process_views(benchmark, fig2ab):
    text = benchmark(f2.render_ab, fig2ab)
    invol = fig2ab.invol_by_node
    others = [v for n, v in invol.items() if n != fig2ab.perturbed_node]
    assert invol[fig2ab.perturbed_node] > 2 * max(others, default=0.0)
    non_lu = {pid: t for pid, (comm, t) in fig2ab.node_processes.items()
              if not comm.startswith("lu") and pid != 0}
    assert max(non_lu, key=non_lu.get) == fig2ab.interference_pid
    write_report("fig2ab.txt", text)
    print("\n" + text)


def test_fig2c_voluntary_vs_involuntary(benchmark):
    result = benchmark.pedantic(f2.run_fig2c, rounds=1, iterations=1)
    vols = [v for v, _ in result.sched]
    invs = [i for _, i in result.sched]
    victim = int(np.argmax(invs))
    assert victim in (0, 1)  # a CPU0-sharing rank
    assert sum(sorted(invs)[:2]) < 0.5 * max(invs)
    assert vols[int(np.argmin(invs))] > vols[victim]
    text = f2.render_c(result)
    write_report("fig2c.txt", text)
    print("\n" + text)


def test_fig2d_merged_profile(benchmark, fig2ab):
    result = benchmark(f2.build_fig2d, fig2ab.data, 0)
    kernel_names = {r.name for r in result.kernel_rows()}
    assert {"schedule_vol", "tcp_sendmsg"} <= kernel_names
    tau_recv = result.tau_only_excl_s["MPI_Recv()"]
    assert result.merged_excl_s("MPI_Recv()") < 0.2 * tau_recv
    lines = [f"Figure 2-D (rank 0): routine  tau-only(s)  merged-true(s)"]
    for name, tau_excl in sorted(result.tau_only_excl_s.items(),
                                 key=lambda kv: -kv[1]):
        lines.append(f"  {name:16s} {tau_excl:10.4f} "
                     f"{result.merged_excl_s(name):10.4f}")
    text = "\n".join(lines) + "\n"
    write_report("fig2d.txt", text)
    print("\n" + text)


def test_fig2e_merged_trace(benchmark):
    result = benchmark.pedantic(f2.run_fig2e, rounds=1, iterations=1)
    assert result.window
    for expected in ("sys_writev", "sock_sendmsg", "tcp_sendmsg"):
        assert expected in result.kernel_events_in_window
    text = f2.render_e(result)
    write_report("fig2e.txt", text)
    print("\n" + text)
