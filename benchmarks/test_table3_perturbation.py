"""Table 3: perturbation under five instrumentation configurations.

Reproduction targets (paper LU averages: Base 0 %, KtauOff 0.01 %,
ProfAll 2.32 %, ProfSched 0.07 %, ProfAll+Tau 2.82 %; Sweep3D
ProfAll+Tau 0.49 %):

* compiled-but-disabled instrumentation is statistically free;
* full kernel instrumentation costs low single-digit percent;
* scheduler-only instrumentation costs almost nothing;
* adding user-level TAU instrumentation costs slightly more than
  ProfAll alone.
"""

import pytest

from repro.experiments import table3
from benchmarks.conftest import write_report


@pytest.fixture(scope="session")
def table3_rows():
    return table3.build(nranks=16, seeds=(1, 2, 3))


def test_table3_perturbation(benchmark, table3_rows):
    rows = table3_rows
    text = benchmark(table3.render, rows)
    by = {r.config: r for r in rows}

    assert by["Base"].pct_avg_slow == 0.0
    assert by["Ktau Off"].pct_avg_slow < 0.3
    assert 0.2 < by["ProfAll"].pct_avg_slow < 8.0
    assert by["ProfSched"].pct_avg_slow < 0.5 * by["ProfAll"].pct_avg_slow
    assert by["ProfAll+Tau"].pct_avg_slow >= by["ProfAll"].pct_avg_slow

    write_report("table3.txt", text)
    print("\n" + text)


def test_table3_sweep3d_row(benchmark):
    base_avg, inst_avg, slow_pct = benchmark.pedantic(
        table3.build_sweep3d, rounds=1, iterations=1)
    # paper: 0.49% — full instrumentation on Sweep3D stays under a few %
    assert 0.0 <= slow_pct < 4.0
    text = (f"Table 3 (Sweep3D): Base {base_avg:.3f}s, ProfAll+Tau "
            f"{inst_avg:.3f}s -> {slow_pct:.2f}% slowdown (paper: 0.49%)\n")
    write_report("table3_sweep3d.txt", text)
    print("\n" + text)
