"""Extension experiment: I/O-node scaling (the §6 / ZeptoOS direction).

Not a paper table — the paper announces this evaluation as future work —
but the harness exists so the claim "KTAU will be used to evaluate I/O
node performance" is demonstrable: per-client latency degrades with
fan-in and the I/O node's kernel-time breakdown attributes it.
"""

from repro.experiments.ionode import render, scaling_sweep
from repro.workloads.ionode import IoNodeParams
from repro.sim.units import MSEC
from benchmarks.conftest import write_report


def test_ionode_scaling(benchmark):
    params = IoNodeParams(nrequests=12, request_bytes=65_536,
                          think_ns=4 * MSEC, fsync_every=6)
    results = benchmark.pedantic(
        lambda: scaling_sweep((1, 2, 4, 8), params), rounds=1, iterations=1)

    latencies = [r.mean_latency_ms() for r in results]
    # monotone degradation with fan-in, super-linear by 8 clients
    assert latencies == sorted(latencies)
    assert latencies[-1] > 3 * latencies[0]
    # the integrated view attributes the I/O node's kernel time
    for r in results:
        assert r.ciod_groups.get("net", 0) > 0
        assert r.ciod_groups.get("io", 0) > 0
    # byte conservation through network + disk
    for r, n in zip(results, (1, 2, 4, 8)):
        assert r.disk_bytes == n * params.nrequests * params.request_bytes

    text = render(results)
    write_report("ionode_extension.txt", text)
    print("\n" + text)
