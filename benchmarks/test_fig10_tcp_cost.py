"""Figure 10: exclusive time per kernel TCP operation (CDF).

Reproduction targets:

* per-call cost sits in the paper's 27–36 µs range (450 MHz P3 scale);
* 64x2 is ~11.5 % more expensive across the range than 128x1 (SMP cache
  penalty: packets processed on a different CPU than their consumer);
* "128x1 Pin,IRQ CPU1" (process and interrupts together on CPU1) tracks
  plain 128x1 — locality, not the specific CPU, is what matters.
"""

import numpy as np

from repro.experiments import fig9_10
from benchmarks.conftest import write_report


def test_fig10_tcp_cost(benchmark, fig9_runs):
    result = benchmark(fig9_10.build_fig10, fig9_runs)

    base = result.median_us("128x1")
    control = result.median_us("128x1 Pin,IRQ CPU1")
    smp = result.median_us("64x2 Pinned,I-Bal")

    # paper's absolute range
    for value in (base, control, smp):
        assert 26.0 <= value <= 38.0

    # the 64x2 dilation (paper: ~11.5 %)
    dilation_pct = 100.0 * (smp - base) / base
    assert 5.0 <= dilation_pct <= 20.0

    # the control tracks plain 128x1 closely
    assert abs(control - base) / base < 0.03

    text = fig9_10.render_fig10(result)
    write_report("fig10.txt", text)
    print("\n" + text)
