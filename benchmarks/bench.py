"""The committed performance harness: ``make bench``.

Measures the things this substrate optimises and writes them to a JSON
artifact (``BENCH_pr10.json`` at the repo root is the committed record):

1. **Engine hot path** — the self-rescheduling churn loop from
   ``benchmarks/test_simulator_speed.py`` (50k events through the
   dispatch loop) plus a cancel-heavy variant that exercises handle
   pooling and lazy-delete reclamation.  Both are measured A/B against
   an in-harness *reference heap engine* — a faithful port of the
   pre-calendar-queue binary-heap dispatch loop — interleaved
   rep-by-rep so the baseline is same-host, same-minute, same-process.
   A stored constant from another machine is metadata, not a baseline.
2. **Parallel fan-out** — a 4-replication LU sweep executed serially and
   through ``repro.parallel`` worker processes, with the serial and
   parallel profile exports hashed to prove bit-identity alongside the
   wall-clock numbers.
3. **Observability** — the churn loop re-run with :mod:`repro.obs`
   metrics enabled (the KTAU-style always-on-counters cost, expected to
   be noise), plus the harness metrics snapshot of an instrumented
   churn + LU replication.
4. **Cluster monitor** — the churn loop re-run while a live
   :class:`~repro.monitor.ClusterMonitor` (attached daemons, subscribed
   snapshot callbacks) exists in the process, proving the monitor sits
   off the dispatch hot path; plus the honest price of monitoring an
   actual LU run (the per-period KTAUD daemon cost the paper predicts).
5. **Fault machinery** — the churn loop and an LU run with a
   :class:`~repro.faults.FaultInjector` armed on an *empty* plan vs
   without, including a byte-identity check on the LU profiles: a run
   with no faults due must be unchanged, not merely similar.
6. **Lost-time attribution** — a monitored LU run with the streaming
   bottleneck attributor (:mod:`repro.monitor.bottleneck`) off vs on,
   again with profile byte-identity checked: the attributor is
   host-side analysis and must not perturb the simulation.
7. **Simulated PMCs** — an LU run with the counters build option off vs
   on.  The counter model is pure per-charge integer arithmetic with no
   events of its own, so the wall-time delta should be small and —
   after stripping the counter sections from the counters-on export —
   the *time* profiles must byte-compare identical: counting cache
   misses must never change what the clock says.

Honesty note: speedup is reported next to ``cpu_count`` and a host
fingerprint (CPU model, python version).  On a single-CPU host the
parallel sweep *cannot* beat serial (expect ~1x minus fork overhead);
the committed artifact records whatever the machine really did.  Churn
comparisons report **min-of-N from interleaved reps** as the primary
statistic: on shared hosts the mean is dominated by scheduling noise
(identical code has been observed to vary 2x rep-to-rep here), while
the interleaved minimum is the closest observable to the code's true
cost.

Usage::

    PYTHONPATH=src python benchmarks/bench.py [--smoke] [--out FILE]
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import json
import os
import platform
import statistics
import time
from sys import getrefcount

from repro.analysis.export import profiles_to_json
from repro.analysis.profiles import harvest_job
from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.parallel import parallel_map
from repro.sim.engine import Engine
from repro.sim.units import MSEC
from repro.workloads.lu import LuParams, lu_app

#: Mean of test_engine_raw_event_throughput immediately before the PR-5
#: hot-path rewrite, on the *seed container* — a different machine than
#: whatever runs this harness.  Kept as provenance metadata only; every
#: speedup figure below is computed against the same-host reference
#: engine measured in the same process.
SEED_CONTAINER_PRE_PR5_CHURN_MEAN_S = 0.06763

SWEEP_LU = LuParams(niters=3, iter_compute_ns=8 * MSEC, halo_bytes=8192,
                    sweep_msg_bytes=2048, inorm=2)


def host_fingerprint() -> dict:
    """Identify the machine so committed artifacts from different hosts
    are never compared as if they were the same baseline."""
    cpu_model = ""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu_model": cpu_model or platform.processor() or "unknown",
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


class _HeapEngine:
    """The pre-PR8 binary-heap engine, kept as the measurement reference.

    A faithful port — not an idealisation — of the old engine's hot
    paths, including the per-event costs the calendar queue was built
    to shed: the ``schedule`` → ``schedule_at`` delegation frame, the
    per-schedule interceptor test, the ``in_queue``/``_active``
    bookkeeping, per-event ``until``/``max_events`` bound tests, and
    heap push/pop per event.  Only the obs publishing (disabled during
    the A/B anyway) is omitted.  Living inside the harness rather than
    importing an old git revision keeps ``make bench`` self-contained
    and the baseline measured under identical rules.
    """

    class _Handle:
        __slots__ = ("time", "seq", "fn", "cancelled", "label", "engine",
                     "in_queue")

        def __init__(self, time, seq, fn, label):
            self.time = time
            self.seq = seq
            self.fn = fn
            self.cancelled = False
            self.label = label
            self.engine = None
            self.in_queue = False

        def cancel(self):
            if self.cancelled:
                return
            self.cancelled = True
            self.fn = None
            if self.in_queue and self.engine is not None:
                self.engine._note_cancel()

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._active = 0
        self._cancelled_in_queue = 0
        self._free = []
        self.schedule_interceptor = None
        self.events_processed = 0

    def _note_cancel(self):
        self._active -= 1
        self._cancelled_in_queue += 1

    def schedule_at(self, time, fn, label=""):
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        if self.schedule_interceptor is not None:
            fn = self.schedule_interceptor(fn, label)
        seq = self._seq + 1
        self._seq = seq
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.cancelled = False
            handle.label = label
        else:
            handle = self._Handle(time, seq, fn, label)
            handle.engine = self
        handle.in_queue = True
        self._active += 1
        heapq.heappush(self._queue, (time, seq, handle))
        return handle

    def schedule(self, delay, fn, label=""):
        if delay < 0:
            raise ValueError("negative delay")
        return self.schedule_at(self.now + delay, fn, label)

    def run_until_idle(self, until=None, max_events=None):
        queue = self._queue
        free = self._free
        pop = heapq.heappop
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return
            if not queue:
                break
            entry = queue[0]
            handle = entry[2]
            if handle.cancelled:
                pop(queue)
                self._cancelled_in_queue -= 1
                if len(free) < 1024 and getrefcount(handle) == 3:
                    free.append(handle)
                continue
            time_ = entry[0]
            if until is not None and time_ > until:
                break
            pop(queue)
            self.now = time_
            fn = handle.fn
            handle.fn = None
            handle.in_queue = False
            self._active -= 1
            self.events_processed += 1
            processed += 1
            fn()
            if len(free) < 1024 and getrefcount(handle) == 3:
                free.append(handle)


def _interleaved(variants: dict, rounds: int) -> dict:
    """Time each no-arg callable ``rounds`` times, interleaving variants
    within every rep so host-load drift hits all of them equally.

    Returns ``{name: {"min_s", "mean_s"}}``; ``min_s`` is the primary
    statistic (see the module docstring's honesty note).
    """
    times: dict = {name: [] for name in variants}
    for _ in range(rounds):
        for name, fn in variants.items():
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)
    return {name: {"min_s": min(ts), "mean_s": statistics.mean(ts)}
            for name, ts in times.items()}


def _churn(events: int, make_engine=Engine) -> None:
    """The raw dispatch loop: one self-rescheduling event chain."""
    engine = make_engine()
    count = events

    def reschedule():
        nonlocal count
        count -= 1
        if count > 0:
            engine.schedule(10, reschedule)

    engine.schedule(1, reschedule)
    engine.run_until_idle()
    assert engine.events_processed == events


def _cancel_churn(events: int, make_engine=Engine) -> None:
    """Schedule/cancel-heavy load: every event cancels a decoy, so the
    free list and lazy-delete reclamation carry half the traffic."""
    engine = make_engine()
    count = events

    def reschedule():
        nonlocal count
        count -= 1
        decoy = engine.schedule(1000, reschedule)
        decoy.cancel()
        if count > 0:
            engine.schedule(10, reschedule)

    engine.schedule(1, reschedule)
    engine.run_until_idle()


def bench_engine_churn(events: int, rounds: int) -> dict:
    """Calendar-queue churn vs the in-harness reference heap, interleaved."""
    ab = _interleaved({
        "calendar": lambda: _churn(events),
        "heap_baseline": lambda: _churn(events, _HeapEngine),
    }, rounds)
    cal, heap = ab["calendar"], ab["heap_baseline"]
    return {
        "events": events,
        "rounds": rounds,
        "min_s": cal["min_s"],
        "mean_s": cal["mean_s"],
        "events_per_s": events / cal["min_s"],
        "heap_baseline_min_s": heap["min_s"],
        "heap_baseline_mean_s": heap["mean_s"],
        "speedup_vs_heap_baseline": heap["min_s"] / cal["min_s"],
        "seed_container_pre_pr5_mean_s_50k": SEED_CONTAINER_PRE_PR5_CHURN_MEAN_S,
    }


def bench_cancel_churn(events: int, rounds: int) -> dict:
    """Cancel-heavy churn vs the reference heap, interleaved."""
    ab = _interleaved({
        "calendar": lambda: _cancel_churn(events),
        "heap_baseline": lambda: _cancel_churn(events, _HeapEngine),
    }, rounds)
    cal, heap = ab["calendar"], ab["heap_baseline"]
    return {
        "events": events,
        "rounds": rounds,
        "min_s": cal["min_s"],
        "mean_s": cal["mean_s"],
        "events_per_s": events / cal["min_s"],
        "heap_baseline_min_s": heap["min_s"],
        "heap_baseline_mean_s": heap["mean_s"],
        "speedup_vs_heap_baseline": heap["min_s"] / cal["min_s"],
    }


def bench_interceptor_overhead(events: int, rounds: int) -> dict:
    """Churn with the schedule interceptor detached vs armed with a
    pass-through hook, interleaved.

    Detached is the structural zero: arming swaps the engine's class, so
    the detached schedule path contains no hook test at all.  The armed
    row prices the real cost of shardsan-style wrapping (one extra call
    per schedule); ``armed_passthrough`` minus ``detached`` is what a
    user pays to turn the sanitizer on.
    """
    def make_armed():
        engine = Engine()
        engine.schedule_interceptor = lambda fn, label: fn
        return engine

    ab = _interleaved({
        "detached": lambda: _churn(events),
        "armed_passthrough": lambda: _churn(events, make_armed),
    }, rounds)
    det, armed = ab["detached"], ab["armed_passthrough"]
    return {
        "events": events,
        "rounds": rounds,
        "detached_min_s": det["min_s"],
        "armed_passthrough_min_s": armed["min_s"],
        "armed_overhead_pct": 100.0 * (armed["min_s"] - det["min_s"])
        / det["min_s"],
    }


def _lu_replication(seed: int) -> str:
    """One LU replication; returns the canonical profile JSON."""
    cluster = make_chiba(nnodes=4, seed=seed)
    job = launch_mpi_job(cluster, 8, lu_app(SWEEP_LU),
                         placement=block_placement(2, 8))
    job.run(limit_s=600)
    data = harvest_job(job)
    cluster.teardown()
    return profiles_to_json(data)


def bench_parallel_sweep(nreps: int, worker_counts: tuple[int, ...]) -> dict:
    """The replication fan-out: ``nreps`` seeds, serial vs each worker
    count, with bit-identity checked via profile-export hashes."""
    seeds = list(range(1, nreps + 1))

    def digest(payloads: list[str]) -> str:
        h = hashlib.sha256()
        for payload in payloads:
            h.update(payload.encode())
        return h.hexdigest()

    t0 = time.perf_counter()
    serial = parallel_map(_lu_replication, seeds, workers=1)
    serial_s = time.perf_counter() - t0
    serial_digest = digest(serial)

    runs = {}
    for workers in worker_counts:
        t0 = time.perf_counter()
        fanned = parallel_map(_lu_replication, seeds, workers=workers)
        elapsed = time.perf_counter() - t0
        runs[str(workers)] = {
            "wall_s": elapsed,
            "speedup_vs_serial": serial_s / elapsed,
            "bit_identical_to_serial": digest(fanned) == serial_digest,
        }

    return {
        "replications": nreps,
        "profile_sha256": serial_digest,
        "serial_wall_s": serial_s,
        "workers": runs,
    }


def _churn_stats(events: int, rounds: int) -> dict:
    """Plain churn timing (no baseline A/B) for the overhead benches."""
    return _interleaved({"churn": lambda: _churn(events)}, rounds)["churn"]


def bench_obs_overhead(events: int, rounds: int) -> dict:
    """Churn with obs metrics on vs off.

    The dispatch loop itself is uninstrumented (counters are published
    once per ``Engine.run``), so the on/off ratio should sit within
    measurement noise; the committed number keeps that claim honest.
    """
    from repro import obs

    off = _churn_stats(events, rounds)
    obs.enable(metrics=True, tracing=False, progress=False)
    try:
        on = _churn_stats(events, rounds)
    finally:
        obs.disable()
    return {
        "events": events,
        "rounds": rounds,
        "min_s_obs_off": off["min_s"],
        "min_s_obs_on": on["min_s"],
        "mean_s_obs_off": off["mean_s"],
        "mean_s_obs_on": on["mean_s"],
        "overhead_pct": 100.0 * (on["min_s"] - off["min_s"])
        / off["min_s"],
    }


def bench_monitor_overhead(events: int, rounds: int) -> dict:
    """Churn mean with a live cluster monitor in the process vs without.

    The monitor observes at KTAUD extraction points, never inside the
    engine dispatch loop, so ``overhead_pct`` (the <5% acceptance row)
    should be measurement noise.  The ``lu_*`` fields record the real
    cost of monitoring an application run: the per-node daemons are
    simulated processes whose extraction reads cost virtual CPU, plus
    the host-side interval/detection work per snapshot.
    """
    from repro.monitor import ClusterMonitor, MonitorConfig

    off = _churn_stats(events, rounds)
    cluster = make_chiba(nnodes=4, seed=1)
    monitor = ClusterMonitor(cluster, MonitorConfig(period_ns=10 * MSEC))
    monitor.attach()
    try:
        on = _churn_stats(events, rounds)
    finally:
        cluster.teardown()

    def lu_run(monitored: bool) -> float:
        t0 = time.perf_counter()
        c = make_chiba(nnodes=4, seed=1)
        mon = ClusterMonitor(c, MonitorConfig(period_ns=10 * MSEC)) \
            if monitored else None
        job = launch_mpi_job(c, 8, lu_app(SWEEP_LU),
                             placement=block_placement(2, 8),
                             node_setup=mon.attach_node if mon else None)
        job.run(limit_s=600)
        if mon is not None:
            mon.harvest()
        c.teardown()
        return time.perf_counter() - t0

    plain = min(lu_run(False) for _ in range(rounds))
    monitored = min(lu_run(True) for _ in range(rounds))
    return {
        "events": events,
        "rounds": rounds,
        "min_s_monitor_off": off["min_s"],
        "min_s_monitor_on": on["min_s"],
        "overhead_pct": 100.0 * (on["min_s"] - off["min_s"])
        / off["min_s"],
        "lu_plain_wall_s": plain,
        "lu_monitored_wall_s": monitored,
        "lu_overhead_pct": 100.0 * (monitored - plain) / plain,
    }


def bench_faults_overhead(events: int, rounds: int) -> dict:
    """Churn and LU wall time with the fault machinery detached vs armed
    on an empty plan.

    An injector with no faults schedules no engine events and installs
    no delivery or wire hooks, so the simulation under measurement must
    be untouched: both ``overhead_pct`` figures should be measurement
    noise and ``lu_bit_identical_to_plain`` must be True (the armed
    run's harvested profiles byte-compare against the plain run's).
    """
    from repro.faults import FaultInjector, FaultPlan

    off = _churn_stats(events, rounds)
    cluster = make_chiba(nnodes=4, seed=1)
    FaultInjector(cluster, FaultPlan("bench-empty")).arm()
    try:
        on = _churn_stats(events, rounds)
    finally:
        cluster.teardown()

    def lu_run(armed: bool) -> tuple[float, str]:
        t0 = time.perf_counter()
        c = make_chiba(nnodes=4, seed=1)
        if armed:
            FaultInjector(c, FaultPlan("bench-empty")).arm()
        job = launch_mpi_job(c, 8, lu_app(SWEEP_LU),
                             placement=block_placement(2, 8))
        job.run(limit_s=600)
        payload = profiles_to_json(harvest_job(job))
        c.teardown()
        return time.perf_counter() - t0, payload

    plain = [lu_run(False) for _ in range(rounds)]
    armed = [lu_run(True) for _ in range(rounds)]
    plain_s = min(t for t, _ in plain)
    armed_s = min(t for t, _ in armed)
    return {
        "events": events,
        "rounds": rounds,
        "min_s_faults_off": off["min_s"],
        "min_s_faults_armed": on["min_s"],
        "overhead_pct": 100.0 * (on["min_s"] - off["min_s"])
        / off["min_s"],
        "lu_plain_wall_s": plain_s,
        "lu_armed_wall_s": armed_s,
        "lu_overhead_pct": 100.0 * (armed_s - plain_s) / plain_s,
        "lu_bit_identical_to_plain": all(p == plain[0][1]
                                         for _, p in armed),
    }


def bench_bottleneck_overhead(rounds: int) -> dict:
    """Monitored LU wall time with the streaming lost-time attributor
    off (``bottleneck_top_k=0``) vs on.

    The attributor is host-side arithmetic over interval deltas the
    monitor already computes, so ``overhead_pct`` should be measurement
    noise — and because it never touches the simulation,
    ``profiles_bit_identical`` must be True: the attributed runs'
    harvested profiles byte-compare against the plain monitored run's.
    """
    from repro.monitor import ClusterMonitor, MonitorConfig

    def lu_run(top_k: int) -> tuple[float, str]:
        t0 = time.perf_counter()
        c = make_chiba(nnodes=4, seed=1)
        mon = ClusterMonitor(c, MonitorConfig(period_ns=10 * MSEC,
                                              bottleneck_top_k=top_k))
        job = launch_mpi_job(c, 8, lu_app(SWEEP_LU),
                             placement=block_placement(2, 8),
                             node_setup=mon.attach_node)
        job.run(limit_s=600)
        payload = profiles_to_json(harvest_job(job))
        mon.harvest()
        c.teardown()
        return time.perf_counter() - t0, payload

    off = [lu_run(0) for _ in range(rounds)]
    on = [lu_run(5) for _ in range(rounds)]
    off_s = min(t for t, _ in off)
    on_s = min(t for t, _ in on)
    return {
        "rounds": rounds,
        "lu_monitored_wall_s": off_s,
        "lu_attributed_wall_s": on_s,
        "overhead_pct": 100.0 * (on_s - off_s) / off_s,
        "profiles_bit_identical": all(p == off[0][1] for _, p in on),
    }


def bench_counters_overhead(rounds: int) -> dict:
    """LU wall time with the simulated-PMC build option off vs on.

    Counter advancement is integer arithmetic on the existing
    time-charging paths — no events, no RNG draws, no extra overhead
    cycles — so ``overhead_pct`` measures pure host-side bookkeeping
    and ``time_profiles_identical`` must be True: the counters-on
    export, with the counter sections stripped, byte-compares against
    the counters-off export (simulated time is untouched).
    """
    from repro.core.config import KtauBuildConfig

    def lu_run(counters: bool) -> tuple[float, str]:
        t0 = time.perf_counter()
        c = make_chiba(nnodes=4, seed=1,
                       ktau=KtauBuildConfig.full(counters=counters))
        job = launch_mpi_job(c, 8, lu_app(SWEEP_LU),
                             placement=block_placement(2, 8))
        job.run(limit_s=600)
        payload = profiles_to_json(harvest_job(job))
        c.teardown()
        return time.perf_counter() - t0, payload

    off: list[tuple[float, str]] = []
    on: list[tuple[float, str]] = []
    for _ in range(rounds):  # interleaved A/B, same-minute baseline
        off.append(lu_run(False))
        on.append(lu_run(True))
    off_s = min(t for t, _ in off)
    on_s = min(t for t, _ in on)

    def strip_counters(payload: str) -> str:
        doc = json.loads(payload)

        def scrub(node) -> None:
            if isinstance(node, dict):
                node.pop("pmc", None)
                if isinstance(node.get("counters"), dict):
                    node["counters"] = {}
                for value in node.values():
                    scrub(value)
            elif isinstance(node, list):
                for value in node:
                    scrub(value)

        scrub(doc)
        return json.dumps(doc, sort_keys=True)

    baseline = strip_counters(off[0][1])
    return {
        "rounds": rounds,
        "lu_counters_off_wall_s": off_s,
        "lu_counters_on_wall_s": on_s,
        "overhead_pct": 100.0 * (on_s - off_s) / off_s,
        "time_profiles_identical":
            all(strip_counters(p) == baseline for _, p in on)
            and all(strip_counters(p) == baseline for _, p in off),
    }


def metrics_snapshot(events: int) -> dict:
    """Harness metrics for one instrumented churn + one LU replication."""
    from repro import obs

    obs.enable(metrics=True, tracing=False, progress=False)
    try:
        _churn(events)
        _lu_replication(seed=1)
        return obs.snapshot()
    finally:
        obs.disable()


def main(argv: list[str] | None = None) -> int:
    """Run the harness and write the JSON artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (artifact not meaningful)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: stdout only)")
    args = parser.parse_args(argv)

    if args.smoke:
        churn_events, churn_rounds, nreps = 5_000, 3, 2
    else:
        # Churn reps are cheap (~30ms each); 12 interleaved reps make
        # the min-of-N statistic robust against shared-host noise.
        churn_events, churn_rounds, nreps = 50_000, 12, 4

    cpus = os.cpu_count() or 1
    worker_counts = tuple(sorted({2, min(4, max(2, cpus))}))

    result = {
        "meta": {
            "smoke": args.smoke,
            "host": host_fingerprint(),
            "cpu_count": cpus,
            "note": ("parallel speedup is bounded by cpu_count; on a "
                     "1-CPU host ~1x is the honest ceiling.  Churn "
                     "speedups compare against the in-process reference "
                     "heap engine, interleaved min-of-N; artifacts from "
                     "different hosts are not comparable (see meta.host)"),
        },
        "engine_churn": bench_engine_churn(churn_events, churn_rounds),
        "engine_cancel_churn": bench_cancel_churn(churn_events, churn_rounds),
        "interceptor_overhead": bench_interceptor_overhead(churn_events,
                                                           churn_rounds),
        "parallel_sweep": bench_parallel_sweep(nreps, worker_counts),
        "obs_overhead": bench_obs_overhead(churn_events, churn_rounds),
        "monitor_overhead": bench_monitor_overhead(churn_events,
                                                   churn_rounds),
        "faults_overhead": bench_faults_overhead(churn_events, churn_rounds),
        "bottleneck_overhead": bench_bottleneck_overhead(churn_rounds),
        "counters_overhead": bench_counters_overhead(churn_rounds),
        "metrics": metrics_snapshot(churn_events),
    }

    payload = json.dumps(result, indent=2, sort_keys=True)
    print(payload)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    identical = all(run["bit_identical_to_serial"]
                    for run in result["parallel_sweep"]["workers"].values())
    identical = identical \
        and result["faults_overhead"]["lu_bit_identical_to_plain"] \
        and result["bottleneck_overhead"]["profiles_bit_identical"] \
        and result["counters_overhead"]["time_profiles_identical"]
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
