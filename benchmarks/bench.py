"""The committed performance harness: ``make bench``.

Measures the things this substrate optimises and writes them to a JSON
artifact (``BENCH_pr4.json`` at the repo root is the committed record):

1. **Engine hot path** — the self-rescheduling churn loop from
   ``benchmarks/test_simulator_speed.py`` (50k events through the
   pop/dispatch loop) plus a cancel-heavy variant that exercises handle
   pooling and heap compaction.
2. **Parallel fan-out** — a 4-replication LU sweep executed serially and
   through ``repro.parallel`` worker processes, with the serial and
   parallel profile exports hashed to prove bit-identity alongside the
   wall-clock numbers.
3. **Observability** — the churn loop re-run with :mod:`repro.obs`
   metrics enabled (the KTAU-style always-on-counters cost, expected to
   be noise), plus the harness metrics snapshot of an instrumented
   churn + LU replication.
4. **Cluster monitor** — the churn loop re-run while a live
   :class:`~repro.monitor.ClusterMonitor` (attached daemons, subscribed
   snapshot callbacks) exists in the process, proving the monitor sits
   off the dispatch hot path; plus the honest price of monitoring an
   actual LU run (the per-period KTAUD daemon cost the paper predicts).
5. **Fault machinery** — the churn loop and an LU run with a
   :class:`~repro.faults.FaultInjector` armed on an *empty* plan vs
   without, including a byte-identity check on the LU profiles: a run
   with no faults due must be unchanged, not merely similar.

Honesty note: speedup is reported next to ``cpu_count``.  On a
single-CPU host the parallel sweep *cannot* beat serial (expect ~1x
minus fork overhead); the committed artifact records whatever the
machine really did.

Usage::

    PYTHONPATH=src python benchmarks/bench.py [--smoke] [--out FILE]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import time

from repro.analysis.export import profiles_to_json
from repro.analysis.profiles import harvest_job
from repro.cluster.launch import block_placement, launch_mpi_job
from repro.cluster.machines import make_chiba
from repro.parallel import parallel_map
from repro.sim.engine import Engine
from repro.sim.units import MSEC
from repro.workloads.lu import LuParams, lu_app

#: Mean of test_engine_raw_event_throughput on this repo immediately
#: before the hot-path rewrite (pytest-benchmark, same container class).
PRE_PR_CHURN_S = 0.06763

SWEEP_LU = LuParams(niters=3, iter_compute_ns=8 * MSEC, halo_bytes=8192,
                    sweep_msg_bytes=2048, inorm=2)


def bench_engine_churn(events: int, rounds: int) -> dict:
    """The raw pop/dispatch loop: one self-rescheduling event chain."""

    def churn() -> int:
        engine = Engine()
        count = events

        def reschedule():
            nonlocal count
            count -= 1
            if count > 0:
                engine.schedule(10, reschedule)

        engine.schedule(1, reschedule)
        engine.run_until_idle()
        assert engine.events_processed == events
        return engine.events_processed

    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        churn()
        times.append(time.perf_counter() - t0)
    mean = statistics.mean(times)
    return {
        "events": events,
        "rounds": rounds,
        "min_s": min(times),
        "mean_s": mean,
        "events_per_s": events / mean,
        "pre_pr_mean_s_50k": PRE_PR_CHURN_S,
        "speedup_vs_pre_pr": (PRE_PR_CHURN_S / mean) * (events / 50_000),
    }


def bench_cancel_churn(events: int, rounds: int) -> dict:
    """Schedule/cancel-heavy load: every event cancels a decoy, so the
    free list and compaction paths carry half the traffic."""

    def churn() -> int:
        engine = Engine()
        count = events

        def reschedule():
            nonlocal count
            count -= 1
            decoy = engine.schedule(1000, reschedule)
            decoy.cancel()
            if count > 0:
                engine.schedule(10, reschedule)

        engine.schedule(1, reschedule)
        engine.run_until_idle()
        return engine.events_processed

    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        churn()
        times.append(time.perf_counter() - t0)
    mean = statistics.mean(times)
    return {"events": events, "rounds": rounds, "min_s": min(times),
            "mean_s": mean, "events_per_s": events / mean}


def _lu_replication(seed: int) -> str:
    """One LU replication; returns the canonical profile JSON."""
    cluster = make_chiba(nnodes=4, seed=seed)
    job = launch_mpi_job(cluster, 8, lu_app(SWEEP_LU),
                         placement=block_placement(2, 8))
    job.run(limit_s=600)
    data = harvest_job(job)
    cluster.teardown()
    return profiles_to_json(data)


def bench_parallel_sweep(nreps: int, worker_counts: tuple[int, ...]) -> dict:
    """The replication fan-out: ``nreps`` seeds, serial vs each worker
    count, with bit-identity checked via profile-export hashes."""
    seeds = list(range(1, nreps + 1))

    def digest(payloads: list[str]) -> str:
        h = hashlib.sha256()
        for payload in payloads:
            h.update(payload.encode())
        return h.hexdigest()

    t0 = time.perf_counter()
    serial = parallel_map(_lu_replication, seeds, workers=1)
    serial_s = time.perf_counter() - t0
    serial_digest = digest(serial)

    runs = {}
    for workers in worker_counts:
        t0 = time.perf_counter()
        fanned = parallel_map(_lu_replication, seeds, workers=workers)
        elapsed = time.perf_counter() - t0
        runs[str(workers)] = {
            "wall_s": elapsed,
            "speedup_vs_serial": serial_s / elapsed,
            "bit_identical_to_serial": digest(fanned) == serial_digest,
        }

    return {
        "replications": nreps,
        "profile_sha256": serial_digest,
        "serial_wall_s": serial_s,
        "workers": runs,
    }


def bench_obs_overhead(events: int, rounds: int) -> dict:
    """Churn mean with obs metrics on vs off.

    The dispatch loop itself is uninstrumented (counters are published
    once per ``Engine.run``), so the on/off ratio should sit within
    measurement noise; the committed number keeps that claim honest.
    """
    from repro import obs

    off = bench_engine_churn(events, rounds)
    obs.enable(metrics=True, tracing=False, progress=False)
    try:
        on = bench_engine_churn(events, rounds)
    finally:
        obs.disable()
    return {
        "events": events,
        "rounds": rounds,
        "mean_s_obs_off": off["mean_s"],
        "mean_s_obs_on": on["mean_s"],
        "overhead_pct": 100.0 * (on["mean_s"] - off["mean_s"])
        / off["mean_s"],
    }


def bench_monitor_overhead(events: int, rounds: int) -> dict:
    """Churn mean with a live cluster monitor in the process vs without.

    The monitor observes at KTAUD extraction points, never inside the
    engine dispatch loop, so ``overhead_pct`` (the <5% acceptance row)
    should be measurement noise.  The ``lu_*`` fields record the real
    cost of monitoring an application run: the per-node daemons are
    simulated processes whose extraction reads cost virtual CPU, plus
    the host-side interval/detection work per snapshot.
    """
    from repro.monitor import ClusterMonitor, MonitorConfig

    off = bench_engine_churn(events, rounds)
    cluster = make_chiba(nnodes=4, seed=1)
    monitor = ClusterMonitor(cluster, MonitorConfig(period_ns=10 * MSEC))
    monitor.attach()
    try:
        on = bench_engine_churn(events, rounds)
    finally:
        cluster.teardown()

    def lu_run(monitored: bool) -> float:
        t0 = time.perf_counter()
        c = make_chiba(nnodes=4, seed=1)
        mon = ClusterMonitor(c, MonitorConfig(period_ns=10 * MSEC)) \
            if monitored else None
        job = launch_mpi_job(c, 8, lu_app(SWEEP_LU),
                             placement=block_placement(2, 8),
                             node_setup=mon.attach_node if mon else None)
        job.run(limit_s=600)
        if mon is not None:
            mon.harvest()
        c.teardown()
        return time.perf_counter() - t0

    plain = min(lu_run(False) for _ in range(rounds))
    monitored = min(lu_run(True) for _ in range(rounds))
    return {
        "events": events,
        "rounds": rounds,
        "mean_s_monitor_off": off["mean_s"],
        "mean_s_monitor_on": on["mean_s"],
        "overhead_pct": 100.0 * (on["mean_s"] - off["mean_s"])
        / off["mean_s"],
        "lu_plain_wall_s": plain,
        "lu_monitored_wall_s": monitored,
        "lu_overhead_pct": 100.0 * (monitored - plain) / plain,
    }


def bench_faults_overhead(events: int, rounds: int) -> dict:
    """Churn and LU wall time with the fault machinery detached vs armed
    on an empty plan.

    An injector with no faults schedules no engine events and installs
    no delivery or wire hooks, so the simulation under measurement must
    be untouched: both ``overhead_pct`` figures should be measurement
    noise and ``lu_bit_identical_to_plain`` must be True (the armed
    run's harvested profiles byte-compare against the plain run's).
    """
    from repro.faults import FaultInjector, FaultPlan

    off = bench_engine_churn(events, rounds)
    cluster = make_chiba(nnodes=4, seed=1)
    FaultInjector(cluster, FaultPlan("bench-empty")).arm()
    try:
        on = bench_engine_churn(events, rounds)
    finally:
        cluster.teardown()

    def lu_run(armed: bool) -> tuple[float, str]:
        t0 = time.perf_counter()
        c = make_chiba(nnodes=4, seed=1)
        if armed:
            FaultInjector(c, FaultPlan("bench-empty")).arm()
        job = launch_mpi_job(c, 8, lu_app(SWEEP_LU),
                             placement=block_placement(2, 8))
        job.run(limit_s=600)
        payload = profiles_to_json(harvest_job(job))
        c.teardown()
        return time.perf_counter() - t0, payload

    plain = [lu_run(False) for _ in range(rounds)]
    armed = [lu_run(True) for _ in range(rounds)]
    plain_s = min(t for t, _ in plain)
    armed_s = min(t for t, _ in armed)
    return {
        "events": events,
        "rounds": rounds,
        "mean_s_faults_off": off["mean_s"],
        "mean_s_faults_armed": on["mean_s"],
        "overhead_pct": 100.0 * (on["mean_s"] - off["mean_s"])
        / off["mean_s"],
        "lu_plain_wall_s": plain_s,
        "lu_armed_wall_s": armed_s,
        "lu_overhead_pct": 100.0 * (armed_s - plain_s) / plain_s,
        "lu_bit_identical_to_plain": all(p == plain[0][1]
                                         for _, p in armed),
    }


def metrics_snapshot(events: int) -> dict:
    """Harness metrics for one instrumented churn + one LU replication."""
    from repro import obs

    obs.enable(metrics=True, tracing=False, progress=False)
    try:
        bench_engine_churn(events, 1)
        _lu_replication(seed=1)
        return obs.snapshot()
    finally:
        obs.disable()


def main(argv: list[str] | None = None) -> int:
    """Run the harness and write the JSON artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (artifact not meaningful)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: stdout only)")
    args = parser.parse_args(argv)

    if args.smoke:
        churn_events, churn_rounds, nreps = 5_000, 2, 2
    else:
        churn_events, churn_rounds, nreps = 50_000, 5, 4

    cpus = os.cpu_count() or 1
    worker_counts = tuple(sorted({2, min(4, max(2, cpus))}))

    result = {
        "meta": {
            "smoke": args.smoke,
            "cpu_count": cpus,
            "note": ("parallel speedup is bounded by cpu_count; on a "
                     "1-CPU host ~1x is the honest ceiling"),
        },
        "engine_churn": bench_engine_churn(churn_events, churn_rounds),
        "engine_cancel_churn": bench_cancel_churn(churn_events, churn_rounds),
        "parallel_sweep": bench_parallel_sweep(nreps, worker_counts),
        "obs_overhead": bench_obs_overhead(churn_events, churn_rounds),
        "monitor_overhead": bench_monitor_overhead(churn_events,
                                                   churn_rounds),
        "faults_overhead": bench_faults_overhead(churn_events, churn_rounds),
        "metrics": metrics_snapshot(churn_events),
    }

    payload = json.dumps(result, indent=2, sort_keys=True)
    print(payload)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    identical = all(run["bit_identical_to_serial"]
                    for run in result["parallel_sweep"]["workers"].values())
    identical = identical \
        and result["faults_overhead"]["lu_bit_identical_to_plain"]
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
