"""Figure 6: CDF of per-rank involuntary scheduling (preemption).

Reproduction targets:

* in the anomaly run, two ranks (61/125) dominate preemption by a huge
  margin (they share one CPU and preempt each other);
* the unpinned 64x2 run retains measurable mutual preemption that
  pinning reduces by roughly an order of magnitude (paper: 2.5–7 s down
  to 0.2–1.1 s).
"""

import numpy as np

from repro.experiments import fig5_6
from benchmarks.conftest import write_report


def test_fig6_involuntary_cdf(benchmark, lu_runs):
    result = benchmark(fig5_6.build, lu_runs, "involuntary")

    anomaly = np.array(result.values["64x2 Anomaly"])
    plain = np.array(result.values["64x2"])
    pinned = np.array(result.values["64x2 Pinned"])

    # the anomaly pair dominates
    top_two = set(np.argsort(anomaly)[-2:])
    assert top_two == {61, 125}
    assert np.sort(anomaly)[-2] > 10 * np.sort(anomaly)[-3]

    # pinning slashes the preemption tail of the healthy 64x2 run
    assert plain.max() > 3 * pinned.max()

    text = fig5_6.render(result)
    write_report("fig6.txt", text)
    print("\n" + text)
