"""Figure 7: activity of every process on the faulty node (ccn10).

Reproduction target: the two LU tasks dominate; every daemon and kernel
thread is minuscule next to them — invalidating the daemon-interference
hypothesis and leaving mutual preemption as the only explanation.
"""

from repro.experiments import fig7
from benchmarks.conftest import write_report


def test_fig7_node_activity(benchmark, anomaly_lu):
    result = benchmark(fig7.build, anomaly_lu)

    assert len(result.lu_pids) == 2  # ranks 61 and 125 live here
    # daemons are minuscule next to the LU tasks
    assert result.daemon_max_s() < 0.1 * result.lu_min_s()
    # and the LU tasks show real activity
    assert result.lu_min_s() > 0.05

    text = fig7.render(result)
    write_report("fig7.txt", text)
    print("\n" + text)
