"""Table 4: direct per-measurement overhead in cycles.

Reproduction target: the measured start/stop cost distributions match
the paper's mean/std/min (start 244.4/236.3/160; stop 295.3/268.8/214)
— these are the very draws that perturb the Table 3 runs.
"""

import pytest

from repro.experiments import table4
from benchmarks.conftest import write_report


def test_table4_direct_overhead(benchmark):
    rows = benchmark(table4.build, 100_000)
    start, stop = rows

    paper = table4.PAPER_TABLE4
    assert start.mean == pytest.approx(paper["Start"]["mean"], rel=0.03)
    assert start.std == pytest.approx(paper["Start"]["std"], rel=0.06)
    assert start.min >= paper["Start"]["min"]
    assert stop.mean == pytest.approx(paper["Stop"]["mean"], rel=0.03)
    assert stop.std == pytest.approx(paper["Stop"]["std"], rel=0.06)
    assert stop.min >= paper["Stop"]["min"]

    text = table4.render(rows)
    write_report("table4.txt", text)
    print("\n" + text)
